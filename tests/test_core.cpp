// Tests for the core layer: problem, evaluator, engine, experiment
// presets, reporting.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "core/problem.hpp"
#include "core/report.hpp"
#include "util/error.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

MappingProblem small_problem(OptimizationGoal goal = OptimizationGoal::Snr) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  spec.goal = goal;
  return make_experiment(spec);
}

TEST(Problem, ValidatesSizeConstraint) {
  // 32-task DVOPD cannot fit a 3x3 grid (Eq. 2).
  ExperimentSpec spec;
  spec.benchmark = "dvopd";
  spec.grid_side = 3;
  EXPECT_THROW(make_experiment(spec), InvalidArgument);
}

TEST(Problem, ExposesComponents) {
  const auto problem = small_problem();
  EXPECT_EQ(problem.task_count(), 8u);
  EXPECT_EQ(problem.tile_count(), 9u);  // 3x3 per the paper sizing rule
  EXPECT_EQ(problem.cg().name(), "pip");
  EXPECT_EQ(problem.objective().name(), "worst_snr");
}

TEST(Experiment, PaperSizingRule) {
  const std::map<std::string, std::size_t> expected_tiles{
      {"pip", 9},   {"mpeg4", 16},   {"vopd", 16},
      {"wavelet", 25}, {"dvopd", 36}, {"263dec_mp3dec", 16}};
  for (const auto& [name, tiles] : expected_tiles) {
    ExperimentSpec spec;
    spec.benchmark = name;
    EXPECT_EQ(make_experiment(spec).tile_count(), tiles) << name;
  }
}

TEST(Experiment, TorusPresetUsesDorRouting) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  spec.topology = TopologyKind::Torus;
  const auto problem = make_experiment(spec);
  EXPECT_EQ(problem.network().routing().name(), "torus_dor");
  EXPECT_EQ(problem.network().topology().name(), "torus3x3");
  EXPECT_EQ(to_string(TopologyKind::Torus), "torus");
  EXPECT_EQ(to_string(TopologyKind::Mesh), "mesh");
}

TEST(Experiment, RouterOverride) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  spec.router = "crossbar";
  const auto problem = make_experiment(spec);
  EXPECT_EQ(problem.network().router().name(), "crossbar");
}

TEST(Experiment, MakeNetworkStandalone) {
  const auto net = make_network(TopologyKind::Mesh, 3, "crux");
  EXPECT_EQ(net->tile_count(), 9u);
  EXPECT_LT(net->worst_case_path_loss_db(), 0.0);
}

TEST(Evaluator, CountsAndScores) {
  const auto problem = small_problem();
  Evaluator evaluator(problem);
  const auto mapping = Mapping::identity(8, 9);
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
  const double fitness = evaluator.evaluate(mapping);
  EXPECT_EQ(evaluator.evaluation_count(), 1u);
  // SNR objective: fitness is the worst-case SNR of the mapping.
  const auto detailed = evaluator.evaluate_detailed(mapping);
  EXPECT_DOUBLE_EQ(fitness, detailed.worst_snr_db);
  EXPECT_EQ(detailed.edges.size(), problem.cg().communication_count());
  evaluator.reset_count();
  EXPECT_EQ(evaluator.evaluation_count(), 0u);
}

TEST(Evaluator, LossObjectiveUsesLoss) {
  const auto problem = small_problem(OptimizationGoal::InsertionLoss);
  Evaluator evaluator(problem);
  const auto mapping = Mapping::identity(8, 9);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(mapping),
                   evaluator.evaluate_raw(mapping).worst_loss_db);
}

TEST(Engine, RunsRegisteredOptimizer) {
  const auto problem = small_problem();
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 300;
  const auto result = engine.run("rs", budget, 1);
  EXPECT_EQ(result.algorithm, "rs");
  EXPECT_GE(result.search.evaluations, 1u);
  EXPECT_LE(result.best_evaluation.worst_loss_db, 0.0);
  EXPECT_GT(result.best_evaluation.worst_snr_db, 0.0);
  EXPECT_EQ(result.best_evaluation.edges.size(),
            problem.cg().communication_count());
  // The stored best fitness corresponds to the detailed re-evaluation.
  EXPECT_NEAR(result.search.best_fitness,
              result.best_evaluation.worst_snr_db, 1e-9);
}

TEST(Engine, GreedyIsConstructedFromProblem) {
  const auto problem = small_problem();
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 500;
  const auto result = engine.run("greedy", budget, 1);
  EXPECT_EQ(result.algorithm, "greedy");
  EXPECT_GT(result.best_evaluation.worst_snr_db, 0.0);
}

TEST(Engine, CompareHandlesContextDependentStrategies) {
  // compare() resolves "greedy" and "bnb" through the same construction
  // path as run(), so mixed lists work.
  const auto problem = small_problem(OptimizationGoal::InsertionLoss);
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 400;
  const auto results = engine.compare({"rs", "greedy", "bnb"}, budget, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].algorithm, "greedy");
  EXPECT_EQ(results[2].algorithm, "bnb");
  for (const auto& r : results)
    EXPECT_LT(r.best_evaluation.worst_loss_db, 0.0);
}

TEST(Engine, CompareRunsAllWithSameBudget) {
  const auto problem = small_problem();
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 200;
  const auto results = engine.compare({"rs", "rpbla"}, budget, 5);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].algorithm, "rs");
  EXPECT_EQ(results[1].algorithm, "rpbla");
  // Identical budgets: the paper's fair-comparison protocol.
  EXPECT_LE(results[0].search.evaluations, 220u);
  EXPECT_LE(results[1].search.evaluations, 220u);
}

TEST(Engine, BranchAndBoundIsConstructedFromProblem) {
  const auto problem = small_problem(OptimizationGoal::InsertionLoss);
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 500000;
  const auto bnb = engine.run("bnb", budget, 1);
  EXPECT_EQ(bnb.algorithm, "bnb");
  // On PIP/3x3 the solver completes; its loss must dominate a heuristic.
  OptimizerBudget small;
  small.max_evaluations = 2000;
  const auto rpbla = engine.run("rpbla", small, 1);
  EXPECT_GE(bnb.best_evaluation.worst_loss_db + 1e-9,
            rpbla.best_evaluation.worst_loss_db);
}

TEST(Engine, UnknownOptimizerThrows) {
  const auto problem = small_problem();
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 10;
  EXPECT_THROW((void)engine.run("quantum", budget, 1), InvalidArgument);
}

TEST(Report, SummaryAndGridContainTheEssentials) {
  const auto problem = small_problem();
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 100;
  const auto result = engine.run("rs", budget, 1);
  const auto summary = summarize_run(result);
  EXPECT_NE(summary.find("rs"), std::string::npos);
  EXPECT_NE(summary.find("worst SNR"), std::string::npos);

  const auto grid = render_mapping(problem.network().topology(),
                                   problem.cg(), result.search.best);
  // 3x3 grid: three lines; one empty tile marker.
  EXPECT_EQ(std::count(grid.begin(), grid.end(), '\n'), 3);
  EXPECT_NE(grid.find('.'), std::string::npos);
  EXPECT_NE(grid.find("hs"), std::string::npos);

  const auto description = describe_best(problem, result);
  EXPECT_NE(description.find("per-communication"), std::string::npos);
  EXPECT_NE(description.find("inp_mem"), std::string::npos);
}

TEST(Workloads, SyntheticProblemEndToEnd) {
  // A generated workload runs through the exact same pipeline.
  auto cg = random_cg({.tasks = 9,
                       .avg_out_degree = 1.5,
                       .min_bandwidth = 8,
                       .max_bandwidth = 64,
                       .seed = 3,
                       .acyclic = true});
  auto network = make_network(TopologyKind::Mesh, 3, "crux");
  MappingProblem problem(std::move(cg), network,
                         make_objective(OptimizationGoal::Snr));
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 300;
  const auto result = engine.run("rpbla", budget, 2);
  EXPECT_GT(result.best_evaluation.worst_snr_db, 0.0);
}

}  // namespace
}  // namespace phonoc
