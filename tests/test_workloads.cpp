// Tests for the benchmark applications and synthetic generators.

#include <gtest/gtest.h>

#include <map>

#include "graph/algorithms.hpp"
#include "util/error.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

TEST(Benchmarks, PaperTaskCounts) {
  // Task counts exactly as printed in the paper's §III.
  const std::map<std::string, std::size_t> expected{
      {"263dec_mp3dec", 14}, {"263enc_mp3enc", 12}, {"dvopd", 32},
      {"mpeg4", 12},         {"mwd", 12},           {"pip", 8},
      {"vopd", 16},          {"wavelet", 22}};
  for (const auto& [name, tasks] : expected) {
    const auto cg = make_benchmark(name);
    EXPECT_EQ(cg.task_count(), tasks) << name;
    EXPECT_NO_THROW(cg.validate());
  }
}

TEST(Benchmarks, PaperEdgeCounts) {
  // Edge counts the paper states explicitly.
  EXPECT_EQ(make_benchmark("mpeg4").communication_count(), 26u);
  EXPECT_EQ(make_benchmark("mwd").communication_count(), 12u);
  EXPECT_EQ(make_benchmark("263enc_mp3enc").communication_count(), 12u);
  EXPECT_EQ(make_benchmark("pip").communication_count(), 8u);
}

TEST(Benchmarks, DvopdIsTwoCoupledVopdPlanes) {
  const auto vopd = make_benchmark("vopd");
  const auto dvopd = make_benchmark("dvopd");
  EXPECT_EQ(dvopd.task_count(), 2 * vopd.task_count());
  EXPECT_EQ(dvopd.communication_count(),
            2 * vopd.communication_count() + 2);  // + arm coupling pair
  EXPECT_NE(dvopd.find_task("vld_0"), kInvalidNode);
  EXPECT_NE(dvopd.find_task("vld_1"), kInvalidNode);
  EXPECT_TRUE(is_weakly_connected(dvopd.graph()));
}

TEST(Benchmarks, Mpeg4HasSdramHub) {
  const auto cg = make_benchmark("mpeg4");
  const auto sdram = cg.find_task("sdram");
  ASSERT_NE(sdram, kInvalidNode);
  EXPECT_EQ(cg.graph().in_degree(sdram) + cg.graph().out_degree(sdram), 16u);
  EXPECT_EQ(cg.max_degree(), 16u);
  EXPECT_TRUE(is_weakly_connected(cg.graph()));
}

TEST(Benchmarks, CombinedAppsMayBeDisconnected) {
  // 263dec_mp3dec is two independent decoders sharing the chip — its CG
  // has two weakly-connected components by design.
  const auto cg = make_benchmark("263dec_mp3dec");
  EXPECT_FALSE(is_weakly_connected(cg.graph()));
}

TEST(Benchmarks, NamesRoundTripThroughFactory) {
  for (const auto& name : benchmark_names())
    EXPECT_EQ(make_benchmark(name).name(), name);
  EXPECT_EQ(benchmark_names().size(), 8u);
  EXPECT_EQ(all_benchmarks().size(), 8u);
}

TEST(Benchmarks, CaseInsensitiveAndAlias) {
  EXPECT_EQ(make_benchmark("VOPD").task_count(), 16u);
  EXPECT_EQ(make_benchmark("MPEG-4").task_count(), 12u);
  EXPECT_THROW(make_benchmark("doom"), InvalidArgument);
}

TEST(Benchmarks, AllBandwidthsPositive) {
  for (const auto& cg : all_benchmarks())
    for (const auto& e : cg.edges()) EXPECT_GT(e.bandwidth_mbps, 0.0) <<
        cg.name();
}

// --- generators -----------------------------------------------------------------

TEST(Generator, PipelineStructure) {
  const auto cg = pipeline_cg(5, 100.0);
  EXPECT_EQ(cg.task_count(), 5u);
  EXPECT_EQ(cg.communication_count(), 4u);
  const auto order = topological_order(cg.graph());
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(cg.graph().out_degree(0), 1u);
  EXPECT_EQ(cg.graph().in_degree(4), 1u);
}

TEST(Generator, TreeStructure) {
  const auto cg = tree_cg(7, 2);
  EXPECT_EQ(cg.communication_count(), 6u);
  EXPECT_EQ(cg.graph().out_degree(0), 2u);  // root children 1, 2
  EXPECT_FALSE(has_cycle(cg.graph()));
}

TEST(Generator, HotspotStructure) {
  const auto cg = hotspot_cg(5);
  EXPECT_EQ(cg.communication_count(), 8u);  // 4 in + 4 out on the hub
  EXPECT_EQ(cg.graph().out_degree(0), 4u);
  EXPECT_EQ(cg.graph().in_degree(0), 4u);
}

TEST(Generator, RandomDeterministicPerSeed) {
  RandomCgOptions options;
  options.tasks = 20;
  options.seed = 77;
  const auto a = random_cg(options);
  const auto b = random_cg(options);
  ASSERT_EQ(a.communication_count(), b.communication_count());
  const auto ea = a.edges();
  const auto eb = b.edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].src, eb[i].src);
    EXPECT_EQ(ea[i].dst, eb[i].dst);
    EXPECT_DOUBLE_EQ(ea[i].bandwidth_mbps, eb[i].bandwidth_mbps);
  }
  options.seed = 78;
  const auto c = random_cg(options);
  EXPECT_TRUE(c.communication_count() != a.communication_count() ||
              c.edges()[0].src != a.edges()[0].src ||
              c.edges()[0].bandwidth_mbps != a.edges()[0].bandwidth_mbps);
}

TEST(Generator, RandomAcyclicFlagHonoured) {
  RandomCgOptions options;
  options.tasks = 24;
  options.avg_out_degree = 3.0;
  options.acyclic = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    EXPECT_FALSE(has_cycle(random_cg(options).graph()));
  }
}

TEST(Generator, RandomAlwaysHasAtLeastOneEdge) {
  RandomCgOptions options;
  options.tasks = 2;
  options.avg_out_degree = 1e-9;  // edge probability ~ 0
  const auto cg = random_cg(options);
  EXPECT_GE(cg.communication_count(), 1u);
}

TEST(Generator, RandomBandwidthsInRange) {
  RandomCgOptions options;
  options.tasks = 30;
  options.min_bandwidth = 10.0;
  options.max_bandwidth = 20.0;
  options.avg_out_degree = 4.0;
  const auto cg = random_cg(options);
  for (const auto& e : cg.edges()) {
    EXPECT_GE(e.bandwidth_mbps, 10.0);
    EXPECT_LE(e.bandwidth_mbps, 20.0);
  }
}

TEST(Generator, RejectsBadOptions) {
  EXPECT_THROW(pipeline_cg(1), InvalidArgument);
  EXPECT_THROW(tree_cg(4, 0), InvalidArgument);
  RandomCgOptions bad;
  bad.avg_out_degree = 0.0;
  EXPECT_THROW(random_cg(bad), InvalidArgument);
  RandomCgOptions bw;
  bw.min_bandwidth = 10;
  bw.max_bandwidth = 5;
  EXPECT_THROW(random_cg(bw), InvalidArgument);
}

/// Generator sweep: graphs stay simple (CommGraph invariants hold) for a
/// spread of sizes and densities.
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(GeneratorSweep, ProducesValidSimpleGraphs) {
  RandomCgOptions options;
  options.tasks = std::get<0>(GetParam());
  options.avg_out_degree = std::get<1>(GetParam());
  options.seed = 13;
  options.acyclic = false;
  const auto cg = random_cg(options);
  EXPECT_EQ(cg.task_count(), options.tasks);
  EXPECT_NO_THROW(cg.validate());
  // Density sanity: cannot exceed the simple-digraph bound.
  EXPECT_LE(cg.communication_count(),
            options.tasks * (options.tasks - 1));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, GeneratorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 9, 16, 36),
                       ::testing::Values(0.5, 1.5, 4.0)));

}  // namespace
}  // namespace phonoc
