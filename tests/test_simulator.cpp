// Tests for the event-driven circuit-switched simulator, including the
// key validation property: dynamically observed SNR is never worse than
// the static worst-case bound of the same mapping.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "model/evaluation.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

SimulationOptions fast_sim() {
  SimulationOptions options;
  options.duration_ns = 20000.0;
  options.arrivals_per_us = 1.0;
  return options;
}

TEST(Simulator, DeterministicForSameSeed) {
  ExperimentSpec spec;
  spec.benchmark = "mwd";
  const auto problem = make_experiment(spec);
  const auto mapping = Mapping::identity(problem.task_count(),
                                         problem.tile_count());
  const auto a = simulate(problem.network(), problem.cg(), mapping,
                          fast_sim());
  const auto b = simulate(problem.network(), problem.cg(), mapping,
                          fast_sim());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.worst_snr_db, b.worst_snr_db);
  EXPECT_DOUBLE_EQ(a.latency_ns.mean(), b.latency_ns.mean());
}

TEST(Simulator, DeliversTraffic) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  const auto problem = make_experiment(spec);
  const auto mapping = Mapping::identity(problem.task_count(),
                                         problem.tile_count());
  const auto result = simulate(problem.network(), problem.cg(), mapping,
                               fast_sim());
  EXPECT_GT(result.offered, 0u);
  EXPECT_GT(result.delivered, 0u);
  EXPECT_LE(result.delivered, result.offered);
  EXPECT_GT(result.delivered_gbps, 0.0);
  EXPECT_GT(result.mean_link_utilization, 0.0);
  EXPECT_LE(result.mean_link_utilization, 1.0);
}

TEST(Simulator, LatencyBoundedBelowByServiceTime) {
  SimulationOptions options = fast_sim();
  ExperimentSpec spec;
  spec.benchmark = "pip";
  const auto problem = make_experiment(spec);
  const auto mapping = Mapping::identity(problem.task_count(),
                                         problem.tile_count());
  const auto result = simulate(problem.network(), problem.cg(), mapping,
                               options);
  const double service_ns =
      options.setup_ns + options.payload_bits / options.line_rate_gbps;
  EXPECT_GE(result.latency_ns.min(), service_ns - 1e-9);
  EXPECT_GE(result.wait_ns.min(), 0.0);
  // latency = wait + service exactly, transmission by transmission.
  EXPECT_NEAR(result.latency_ns.mean(), result.wait_ns.mean() + service_ns,
              1e-6);
}

TEST(Simulator, HigherLoadMeansMoreWaiting) {
  ExperimentSpec spec;
  spec.benchmark = "mpeg4";  // hub traffic: contention guaranteed
  const auto problem = make_experiment(spec);
  const auto mapping = Mapping::identity(problem.task_count(),
                                         problem.tile_count());
  SimulationOptions light = fast_sim();
  light.arrivals_per_us = 0.2;
  SimulationOptions heavy = fast_sim();
  heavy.arrivals_per_us = 5.0;
  const auto l = simulate(problem.network(), problem.cg(), mapping, light);
  const auto h = simulate(problem.network(), problem.cg(), mapping, heavy);
  EXPECT_GT(h.offered, l.offered);
  EXPECT_GE(h.wait_ns.mean(), l.wait_ns.mean());
}

/// The central validation: per-transmission SNR under dynamic traffic
/// can never fall below the static all-edges-active worst case.
class SimulatorBoundSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SimulatorBoundSweep, DynamicSnrBoundedByStaticWorstCase) {
  ExperimentSpec spec;
  spec.benchmark = GetParam();
  const auto problem = make_experiment(spec);
  Rng rng(7);
  const auto mapping =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  const auto static_result = evaluate_mapping(
      problem.network(), problem.cg(), mapping.assignment());
  SimulationOptions options = fast_sim();
  options.arrivals_per_us = 4.0;  // stress co-activation
  const auto dynamic_result =
      simulate(problem.network(), problem.cg(), mapping, options);
  ASSERT_GT(dynamic_result.delivered, 0u);
  EXPECT_GE(dynamic_result.worst_snr_db,
            static_result.worst_snr_db - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Apps, SimulatorBoundSweep,
                         ::testing::Values("pip", "mwd", "mpeg4", "vopd"));

TEST(Simulator, ConflictingCircuitsNeverOverlap) {
  // Two tasks sending to the same destination must serialize (ejection
  // port conflict): with only these two edges, the destination's wait
  // statistics must show blocking under heavy load.
  CommGraph cg("converge");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_task("sink");
  cg.add_communication("a", "sink", 64);
  cg.add_communication("b", "sink", 64);
  const auto net = make_network(TopologyKind::Mesh, 2, "crux");
  const auto mapping = Mapping::identity(3, 4);
  SimulationOptions options;
  options.duration_ns = 50000.0;
  options.arrivals_per_us = 20.0;  // far beyond the circuit capacity
  const auto result = simulate(*net, cg, mapping, options);
  EXPECT_GT(result.wait_ns.max(), 0.0);
  // And the SNR of serialized circuits sharing no compatible overlap
  // with anything else is the ceiling.
  EXPECT_DOUBLE_EQ(result.worst_snr_db, net->options().snr_ceiling_db);
}

TEST(Simulator, EdgelessGraphIsQuiet) {
  CommGraph cg("silent");
  cg.add_task("only");
  const auto net = make_network(TopologyKind::Mesh, 2, "crux");
  const auto result = simulate(*net, cg, Mapping::identity(1, 4), {});
  EXPECT_EQ(result.offered, 0u);
  EXPECT_EQ(result.delivered, 0u);
  EXPECT_DOUBLE_EQ(result.worst_snr_db, net->options().snr_ceiling_db);
}

TEST(Simulator, RejectsBadOptions) {
  const auto net = make_network(TopologyKind::Mesh, 2, "crux");
  const auto cg = pipeline_cg(3);
  const auto mapping = Mapping::identity(3, 4);
  SimulationOptions bad;
  bad.duration_ns = 0.0;
  EXPECT_THROW((void)simulate(*net, cg, mapping, bad), InvalidArgument);
  SimulationOptions warm;
  warm.warmup_ns = warm.duration_ns + 1.0;
  EXPECT_THROW((void)simulate(*net, cg, mapping, warm), InvalidArgument);
}

TEST(Simulator, WarmupExcludesEarlyTransmissions) {
  ExperimentSpec spec;
  spec.benchmark = "pip";
  const auto problem = make_experiment(spec);
  const auto mapping = Mapping::identity(problem.task_count(),
                                         problem.tile_count());
  SimulationOptions all = fast_sim();
  SimulationOptions warmed = fast_sim();
  warmed.warmup_ns = all.duration_ns / 2.0;
  const auto a = simulate(problem.network(), problem.cg(), mapping, all);
  const auto w = simulate(problem.network(), problem.cg(), mapping, warmed);
  EXPECT_EQ(a.offered, w.offered);       // same arrivals
  EXPECT_LT(w.delivered, a.delivered);   // fewer measured
}

}  // namespace
}  // namespace phonoc
