// Integration tests: full pipeline runs over the paper's benchmarks,
// heuristics certified against exhaustive ground truth, and cross-module
// consistency checks.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "mapping/exhaustive.hpp"
#include "router/registry.hpp"
#include "routing/registry.hpp"
#include "topology/mesh.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

OptimizerBudget evals(std::uint64_t n) {
  OptimizerBudget budget;
  budget.max_evaluations = n;
  return budget;
}

/// Every benchmark x topology x goal builds and evaluates end to end
/// with values in physically plausible ranges.
class BenchmarkPipeline
    : public ::testing::TestWithParam<std::tuple<const char*, TopologyKind>> {
};

TEST_P(BenchmarkPipeline, ProducesPlausibleMetrics) {
  ExperimentSpec spec;
  spec.benchmark = std::get<0>(GetParam());
  spec.topology = std::get<1>(GetParam());
  const auto problem = make_experiment(spec);
  const Engine engine(problem);
  const auto result = engine.run("rs", evals(200), 17);
  // Loss: between -15 dB (hopeless) and 0 (impossible) for these sizes.
  EXPECT_LT(result.best_evaluation.worst_loss_db, -0.5);
  EXPECT_GT(result.best_evaluation.worst_loss_db, -15.0);
  // SNR: positive (signal above noise) and below the ceiling for every
  // multi-communication app.
  EXPECT_GT(result.best_evaluation.worst_snr_db, 0.0);
  EXPECT_LT(result.best_evaluation.worst_snr_db, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkPipeline,
    ::testing::Combine(::testing::Values("263dec_mp3dec", "263enc_mp3enc",
                                         "dvopd", "mpeg4", "mwd", "pip",
                                         "vopd", "wavelet"),
                       ::testing::Values(TopologyKind::Mesh,
                                         TopologyKind::Torus)));

TEST(GroundTruth, RpblaMatchesExhaustiveOnTinyInstance) {
  // 4-task pipeline on a 2x2 mesh: 24 assignments. R-PBLA with a
  // generous budget must find the same optimum as full enumeration.
  auto cg = pipeline_cg(4);
  auto network = make_network(TopologyKind::Mesh, 2, "crux");
  MappingProblem problem(std::move(cg), network,
                         make_objective(OptimizationGoal::Snr));
  const Engine engine(problem);
  const auto exhaustive = engine.run("exhaustive", evals(100), 0);
  const auto rpbla = engine.run("rpbla", evals(2000), 3);
  EXPECT_NEAR(rpbla.best_evaluation.worst_snr_db,
              exhaustive.best_evaluation.worst_snr_db, 1e-9);
}

TEST(GroundTruth, LossObjectiveToo) {
  auto cg = pipeline_cg(4);
  auto network = make_network(TopologyKind::Mesh, 2, "crux");
  MappingProblem problem(std::move(cg), network,
                         make_objective(OptimizationGoal::InsertionLoss));
  const Engine engine(problem);
  const auto exhaustive = engine.run("exhaustive", evals(100), 0);
  const auto rpbla = engine.run("rpbla", evals(2000), 3);
  EXPECT_NEAR(rpbla.best_evaluation.worst_loss_db,
              exhaustive.best_evaluation.worst_loss_db, 1e-9);
}

TEST(FairComparison, RpblaAtLeastMatchesRandomSearch) {
  // Equal budgets, same seed: the paper's protocol. Descent from random
  // restarts dominates pure random sampling on every benchmark here.
  for (const auto* app : {"pip", "mwd", "vopd"}) {
    ExperimentSpec spec;
    spec.benchmark = app;
    const auto problem = make_experiment(spec);
    const Engine engine(problem);
    const auto rs = engine.run("rs", evals(3000), 11);
    const auto rpbla = engine.run("rpbla", evals(3000), 11);
    EXPECT_GE(rpbla.best_evaluation.worst_snr_db,
              rs.best_evaluation.worst_snr_db - 1e-9)
        << app;
  }
}

TEST(MappingMatters, SpreadBetweenRandomMappingsIsLarge) {
  // The premise of the paper (Fig. 3): mapping choice moves worst-case
  // SNR and loss substantially. Verify the spread over random mappings.
  ExperimentSpec spec;
  spec.benchmark = "vopd";
  const auto problem = make_experiment(spec);
  Evaluator evaluator(problem);
  Rng rng(23);
  double best_snr = -1e9, worst_snr = 1e9;
  double best_loss = -1e9, worst_loss = 1e9;
  for (int i = 0; i < 400; ++i) {
    const auto mapping =
        Mapping::random(problem.task_count(), problem.tile_count(), rng);
    const auto result = evaluator.evaluate_raw(mapping);
    best_snr = std::max(best_snr, result.worst_snr_db);
    worst_snr = std::min(worst_snr, result.worst_snr_db);
    best_loss = std::max(best_loss, result.worst_loss_db);
    worst_loss = std::min(worst_loss, result.worst_loss_db);
  }
  EXPECT_GT(best_snr - worst_snr, 3.0);   // multiple dB of SNR spread
  EXPECT_GT(best_loss - worst_loss, 0.5); // and of loss spread
}

TEST(PaperShape, TorusBeatsMeshOnWorstCaseSnrForSparseApps) {
  // Table II: the torus (shorter average paths, no border detours)
  // reaches equal or better best SNR for the sparse applications.
  for (const auto* app : {"pip", "mwd"}) {
    ExperimentSpec mesh_spec;
    mesh_spec.benchmark = app;
    ExperimentSpec torus_spec = mesh_spec;
    torus_spec.topology = TopologyKind::Torus;
    const auto mesh_problem = make_experiment(mesh_spec);
    const auto torus_problem = make_experiment(torus_spec);
    const auto mesh_result =
        Engine(mesh_problem).run("rpbla", evals(6000), 7);
    const auto torus_result =
        Engine(torus_problem).run("rpbla", evals(6000), 7);
    EXPECT_GE(torus_result.best_evaluation.worst_snr_db,
              mesh_result.best_evaluation.worst_snr_db - 1.0)
        << app;
  }
}

TEST(PaperShape, OptimizedSnrNearTheCrossingPlateau) {
  // Best mappings of small apps should approach (not exceed) the
  // ~40 dB single-crossing interaction plateau of Table II.
  ExperimentSpec spec;
  spec.benchmark = "pip";
  const auto problem = make_experiment(spec);
  const auto result = Engine(problem).run("rpbla", evals(8000), 7);
  EXPECT_GT(result.best_evaluation.worst_snr_db, 30.0);
  EXPECT_LT(result.best_evaluation.worst_snr_db, 41.0);
}

TEST(PaperShape, BiggerNetworksLoseMore) {
  // §III: "both the crosstalk noise and the power loss scale up with
  // the network size". Compare optimized PIP (3x3) vs DVOPD (6x6).
  ExperimentSpec small;
  small.benchmark = "pip";
  small.goal = OptimizationGoal::InsertionLoss;
  ExperimentSpec large;
  large.benchmark = "dvopd";
  large.goal = OptimizationGoal::InsertionLoss;
  const auto small_result =
      Engine(make_experiment(small)).run("rpbla", evals(4000), 5);
  const auto large_result =
      Engine(make_experiment(large)).run("rpbla", evals(4000), 5);
  EXPECT_LT(large_result.best_evaluation.worst_loss_db,
            small_result.best_evaluation.worst_loss_db);
}

TEST(Extensibility, CrossbarServesYxRoutedMesh) {
  // The validation path that rejects Crux+YX accepts crossbar+YX, and
  // the whole pipeline runs on it.
  GridOptions grid;
  grid.rows = grid.cols = 3;
  auto router = std::make_shared<const RouterModel>(
      make_router_netlist("crossbar"), PhysicalParameters::paper_defaults());
  auto network = std::make_shared<const NetworkModel>(
      build_mesh(grid), router, make_routing("yx"), NetworkModelOptions{});
  MappingProblem problem(pipeline_cg(6), network,
                         make_objective(OptimizationGoal::Snr));
  const auto result = Engine(problem).run("rs", evals(300), 1);
  EXPECT_GT(result.best_evaluation.worst_snr_db, 0.0);
}

}  // namespace
}  // namespace phonoc
