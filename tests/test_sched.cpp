// Tests of the distributed sweep scheduler (src/sched/): frame
// encoding/corruption detection, the HostPool work ledger (stealing,
// retry, straggler speculation, first-wins dedup), the loopback
// transport end to end — bit-identity with the in-process backend on a
// 64-cell grid and per-host report merging (wall = max, cpu = sum) —
// and the fleet failure paths driven through a scripted in-memory
// Transport: dead-host failover, straggler retry with late-answer
// dedup, and timeouts accounted into failed_count.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/serialize.hpp"
#include "exec/sweep.hpp"
#include "sched/host_pool.hpp"
#include "sched/journal.hpp"
#include "sched/scheduler.hpp"
#include "sched/service.hpp"
#include "sched/transport.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

// --- framing ---------------------------------------------------------------

TEST(Framing, EncodeDecodeRoundTripInArbitraryChunks) {
  const std::string payloads[] = {"", "x", "line one\nline two\n",
                                  std::string(10000, 'q'),
                                  "frame 3 deadbeef\nnested fake header"};
  std::string stream;
  for (const auto& payload : payloads) stream += encode_frame(payload);

  FrameDecoder decoder;
  std::vector<std::string> decoded;
  // Feed in awkward 7-byte chunks so every header/payload boundary is
  // crossed mid-chunk at least once.
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    decoder.feed(std::string_view(stream).substr(i, 7));
    while (auto frame = decoder.next()) decoded.push_back(*frame);
  }
  ASSERT_EQ(decoded.size(), std::size(payloads));
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i], payloads[i]);
  EXPECT_FALSE(decoder.has_partial());
}

TEST(Framing, CorruptionAndTruncationAreExplicitErrors) {
  std::string frame = encode_frame("the payload under test");
  // Flip one payload byte: checksum mismatch.
  std::string corrupt = frame;
  corrupt[frame.find("payload")] = 'P';
  FrameDecoder decoder;
  decoder.feed(corrupt);
  EXPECT_THROW((void)decoder.next(), ParseError);

  // A stream that is not framed at all fails on the header.
  FrameDecoder junk;
  junk.feed("phonoc-shard v1\nrouter crux\n");
  EXPECT_THROW((void)junk.next(), ParseError);

  // Truncation: the stream helpers see EOF mid-payload.
  std::istringstream truncated(frame.substr(0, frame.size() - 5));
  EXPECT_THROW((void)read_frame(truncated), ParseError);

  // Clean EOF before any header is a nullopt, not an error.
  std::istringstream empty("");
  EXPECT_FALSE(read_frame(empty).has_value());

  // And the stream round trip works.
  std::ostringstream out;
  write_frame(out, "alpha");
  write_frame(out, "beta\nwith newline");
  std::istringstream in(out.str());
  EXPECT_EQ(read_frame(in).value(), "alpha");
  EXPECT_EQ(read_frame(in).value(), "beta\nwith newline");
  EXPECT_FALSE(read_frame(in).has_value());
}

// --- the HostPool work ledger ----------------------------------------------

TEST(HostPool, DealsContiguousBlocksAndOwnQueueFirst) {
  // Equal weights, 4 units of 2 over 2 hosts: host 0 owns the first
  // block {0,2},{2,4}, host 1 the second {4,6},{6,8}.
  HostPool pool(2, 8, 2, 1, -1.0);
  const auto u0 = pool.acquire(0);
  const auto u1 = pool.acquire(1);
  ASSERT_TRUE(u0 && u1);
  EXPECT_EQ(u0->begin, 0u);
  EXPECT_EQ(u0->end, 2u);
  EXPECT_EQ(u1->begin, 4u);
  EXPECT_EQ(u1->end, 6u);
}

TEST(HostPool, CapacityWeightedDealIsProportional) {
  // The satellite acceptance fleet: capacities 1 vs 8, 18 cells in 9
  // units of 2. Largest remainder gives the small host exactly one
  // unit and the big host the remaining eight, both contiguous.
  HostPool pool(std::vector<std::size_t>{1, 8}, 18, 2, 1, -1.0,
                /*allow_steal=*/false);
  const auto small = pool.acquire(0);
  ASSERT_TRUE(small);
  EXPECT_EQ(small->begin, 0u);
  EXPECT_EQ(small->end, 2u);
  for (std::size_t u = 0; u < 8; ++u) {
    const auto unit = pool.acquire(1);
    ASSERT_TRUE(unit);
    EXPECT_EQ(unit->begin, 2 + 2 * u);
    EXPECT_EQ(unit->end, 4 + 2 * u);
    for (std::size_t i = unit->begin; i < unit->end; ++i)
      EXPECT_TRUE(pool.complete_cell(i));
    pool.finish_unit(1);
  }
  for (std::size_t i = small->begin; i < small->end; ++i)
    EXPECT_TRUE(pool.complete_cell(i));
  pool.finish_unit(0);
  EXPECT_TRUE(pool.all_settled());
  EXPECT_FALSE(pool.acquire(1).has_value());
}

TEST(HostPool, ZeroCapacityHostStartsEmptyButCanStillSteal) {
  // A host that never handshook weighs nothing in the deal; with
  // stealing on it can still help out once it (somehow) has a driver.
  HostPool pool(std::vector<std::size_t>{0, 1}, 4, 2, 1, -1.0);
  const auto own = pool.acquire(1);
  ASSERT_TRUE(own);
  EXPECT_EQ(own->begin, 0u);  // host 1 owns the whole grid
  const auto stolen = pool.acquire(0);
  ASSERT_TRUE(stolen);
  EXPECT_EQ(stolen->begin, 2u);  // host 0 only reaches work by stealing
}

TEST(HostPool, AllZeroCapacitiesFallBackToAnEqualSplit) {
  // A fleet where nobody handshook still deals a well-formed ledger —
  // the scheduler fails the cells as unroutable, nothing asserts.
  HostPool pool(std::vector<std::size_t>{0, 0}, 4, 2, 1, -1.0);
  const auto u0 = pool.acquire(0);
  const auto u1 = pool.acquire(1);
  ASSERT_TRUE(u0 && u1);
  EXPECT_EQ(u0->begin, 0u);
  EXPECT_EQ(u1->begin, 2u);
}

TEST(HostPool, CompleteCellIsFirstWins) {
  HostPool pool(1, 4, 4, 1, -1.0);
  (void)pool.acquire(0);
  EXPECT_TRUE(pool.complete_cell(1));
  EXPECT_FALSE(pool.complete_cell(1));  // late duplicate
  EXPECT_EQ(pool.stats().duplicates, 1u);
  EXPECT_FALSE(pool.all_settled());
  for (const std::size_t i : {0u, 2u, 3u}) EXPECT_TRUE(pool.complete_cell(i));
  EXPECT_TRUE(pool.all_settled());
  EXPECT_FALSE(pool.acquire(0).has_value());  // settled pool: drivers exit
}

TEST(HostPool, FailUnitRequeuesThenAbandonsAfterMaxAttempts) {
  HostPool pool(2, 4, 4, 2, -1.0, /*allow_steal=*/false);
  // One unit only: the leftover goes to host 0 (lower index wins the
  // remainder tie), host 1 starts idle.
  auto unit = pool.acquire(0);
  ASSERT_TRUE(unit);
  EXPECT_EQ(unit->attempt, 0u);
  EXPECT_TRUE(pool.complete_cell(0));  // one cell answered before death
  EXPECT_TRUE(pool.fail_unit(0).empty());  // attempt 1 of 2: re-queued
  EXPECT_EQ(pool.stats().retries, 1u);

  // The survivor picks the remainder out of the retry queue (stealing
  // is off, so this is the retry path, not a steal).
  auto retried = pool.acquire(1);
  ASSERT_TRUE(retried);
  EXPECT_EQ(retried->begin, 1u);  // the settled prefix is skipped
  EXPECT_EQ(retried->end, 4u);
  EXPECT_EQ(retried->attempt, 1u);

  // Second death: attempts exhausted, the unsettled cells are abandoned.
  const auto abandoned = pool.fail_unit(1);
  EXPECT_EQ(abandoned, (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(pool.stats().abandoned, 3u);
  EXPECT_TRUE(pool.all_settled());
}

TEST(HostPool, IdleHostStealsFromTheRichestQueue) {
  // 3 units, 2 hosts, equal weights: the remainder tie goes to host 0,
  // so host 0 owns {0,2},{2,4} and host 1 owns {4,6}. After finishing
  // its own unit host 1 steals host 0's *back* unit.
  HostPool pool(2, 6, 2, 1, -1.0);
  const auto own = pool.acquire(1);
  ASSERT_TRUE(own);
  EXPECT_EQ(own->begin, 4u);
  for (std::size_t i = own->begin; i < own->end; ++i)
    EXPECT_TRUE(pool.complete_cell(i));
  pool.finish_unit(1);
  const auto stolen = pool.acquire(1);
  ASSERT_TRUE(stolen);
  EXPECT_EQ(stolen->begin, 2u);
  EXPECT_EQ(stolen->end, 4u);
}

TEST(HostPool, RetiredHostsWorkMovesToTheRetryQueue) {
  HostPool pool(2, 4, 2, 3, -1.0, /*allow_steal=*/false);
  pool.retire_host(0);  // host 0 never even connected
  // With stealing off, host 1 still reaches host 0's unit via retry.
  const auto own = pool.acquire(1);
  ASSERT_TRUE(own);
  EXPECT_EQ(own->begin, 2u);
  pool.finish_unit(1);
  const auto orphan = pool.acquire(1);
  ASSERT_TRUE(orphan);
  EXPECT_EQ(orphan->begin, 0u);
  EXPECT_EQ(orphan->attempt, 0u);  // moved, not failed: attempt intact
}

TEST(HostPool, StragglerSpeculationClonesAndDedups) {
  // speculate_after = 0: any in-flight unit is immediately cloneable.
  HostPool pool(2, 4, 4, 3, 0.0);
  const auto original = pool.acquire(0);
  ASSERT_TRUE(original);
  const auto clone = pool.acquire(1);
  ASSERT_TRUE(clone);
  EXPECT_EQ(clone->begin, original->begin);
  EXPECT_EQ(clone->end, original->end);
  EXPECT_EQ(clone->attempt, original->attempt + 1);
  EXPECT_EQ(pool.stats().speculations, 1u);

  // The clone wins every cell; the straggler's late answers are
  // dropped and nothing is double-counted.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(pool.complete_cell(i));
  pool.finish_unit(1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(pool.complete_cell(i));
  pool.finish_unit(0);
  EXPECT_EQ(pool.stats().duplicates, 4u);
  EXPECT_TRUE(pool.all_settled());
  // One live clone per dispatch: the cloned flag blocks a second one.
  EXPECT_EQ(pool.stats().speculations, 1u);
}

// --- shared spec + identity helpers ----------------------------------------

/// 2 workloads x 2 topologies x 2 goals x 2 optimizers x 2 budgets x 2
/// seeds = 64 cells, evaluation-count budgets only (the determinism
/// contract excludes wall-clock caps).
SweepSpec spec64() {
  SweepSpec spec;
  spec.add_workload("p4", pipeline_cg(4))
      .add_workload("r6", random_cg({.tasks = 6,
                                     .avg_out_degree = 1.5,
                                     .min_bandwidth = 8,
                                     .max_bandwidth = 128,
                                     .seed = 11,
                                     .acyclic = false}))
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus, 3)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(40)
      .add_budget(60)
      .add_seed(3)
      .add_seed(21);
  return spec;
}

/// 1 x 1 x 1 x 2 optimizers x 1 x 4 seeds = 8 cells.
SweepSpec spec8() {
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(30)
      .add_seed_range(1, 4);
  return spec;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_TRUE(a.search.best == b.search.best);
  EXPECT_EQ(a.search.best_fitness, b.search.best_fitness);  // bitwise
  EXPECT_EQ(a.search.evaluations, b.search.evaluations);
  EXPECT_EQ(a.search.iterations, b.search.iterations);
  EXPECT_EQ(a.best_evaluation.worst_loss_db, b.best_evaluation.worst_loss_db);
  EXPECT_EQ(a.best_evaluation.worst_snr_db, b.best_evaluation.worst_snr_db);
}

void expect_all_identical(const SweepSpec& spec,
                          const std::vector<CellResult>& got,
                          const std::vector<CellResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].status, CellStatus::Ok)
        << "cell " << i << " (" << cell_label(spec, got[i].cell)
        << "): " << got[i].error;
    EXPECT_EQ(got[i].cell.index, i);
    EXPECT_EQ(got[i].seed, want[i].seed);
    expect_identical(got[i].run, want[i].run);
  }
}

// --- a scripted in-memory transport for the failure paths -------------------

struct FakeBehavior {
  /// Transport::connect throws (the host is down before the sweep).
  bool refuse_connect = false;
  /// The "worker" dies after emitting this many cell results: queued
  /// frames still drain, then the connection reads Closed and further
  /// sends fail.
  std::size_t die_after_cells = static_cast<std::size_t>(-1);
  /// Every shard's answers become visible only this long after the
  /// shard arrived (a straggler host).
  double answer_delay_seconds = 0.0;
  /// Accept shards, never answer anything (a wedged host).
  bool black_hole = false;
  /// Advertise `capacity N` in the hello reply; 0 sends the bare
  /// legacy hello (which the scheduler must read as capacity 1).
  std::size_t advertise_capacity = 0;
};

/// In-memory worker connection: send() executes the shard through the
/// real run_sweep_cell path immediately and queues the reply frames
/// with their visibility time; recv() replays them like a socket would.
/// Single-threaded per connection, like every scheduler driver.
class FakeConnection final : public Connection {
 public:
  explicit FakeConnection(FakeBehavior behavior) : behavior_(behavior) {}

  bool send(const std::string& payload) override {
    if (closed_ || dead_) return false;
    if (payload == kSchedHello) {
      outbox_.push_back(
          {0.0, behavior_.advertise_capacity > 0
                    ? std::string(kSchedHello) + " capacity " +
                          std::to_string(behavior_.advertise_capacity)
                    : std::string(kSchedHello)});
      return true;
    }
    if (payload == kSchedQuit) return true;
    if (behavior_.black_hole) return true;
    std::istringstream in(payload);
    const SweepShard shard = read_shard(in);
    const auto cells = expand(shard.spec);
    const std::vector<SweepCell> slice(cells.begin() + shard.begin,
                                       cells.begin() + shard.end);
    const auto problems = build_sweep_problems(shard.spec, slice);
    const double at =
        clock_.elapsed_seconds() + behavior_.answer_delay_seconds;
    for (const auto& cell : slice) {
      if (cells_emitted_ >= behavior_.die_after_cells) {
        dead_ = true;  // queued frames drain, then recv reads Closed
        return true;
      }
      const auto& problem = *problems.at(
          SweepProblemKey{cell.workload, cell.topology, cell.goal});
      std::ostringstream block;
      write_cell_result(
          block, run_sweep_cell(shard.spec, cell, problem, shard.evaluator));
      outbox_.push_back({at, block.str()});
      ++cells_emitted_;
    }
    outbox_.push_back({at, std::string(kSchedDonePrefix) + " " +
                               std::to_string(slice.size())});
    return true;
  }

  RecvResult recv(double timeout_seconds) override {
    Timer waited;
    for (;;) {
      if (closed_) return {RecvStatus::Closed, {}};
      if (!outbox_.empty() &&
          outbox_.front().visible_at <= clock_.elapsed_seconds()) {
        auto payload = std::move(outbox_.front().payload);
        outbox_.pop_front();
        return {RecvStatus::Ok, std::move(payload)};
      }
      if (outbox_.empty() && dead_) return {RecvStatus::Closed, {}};
      if (timeout_seconds > 0.0 &&
          waited.elapsed_seconds() >= timeout_seconds)
        return {RecvStatus::Timeout, {}};
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void close() override { closed_ = true; }

 private:
  struct Pending {
    double visible_at = 0.0;
    std::string payload;
  };
  FakeBehavior behavior_;
  Timer clock_;
  std::deque<Pending> outbox_;
  std::size_t cells_emitted_ = 0;
  bool dead_ = false;
  bool closed_ = false;
};

class FakeTransport final : public Transport {
 public:
  explicit FakeTransport(std::map<std::string, FakeBehavior> behaviors)
      : behaviors_(std::move(behaviors)) {}

  std::unique_ptr<Connection> connect(const std::string& endpoint) override {
    FakeBehavior behavior;
    if (const auto it = behaviors_.find(endpoint); it != behaviors_.end())
      behavior = it->second;
    if (behavior.refuse_connect)
      throw ExecError("fake: connection refused to '" + endpoint + "'");
    return std::make_unique<FakeConnection>(behavior);
  }

 private:
  const std::map<std::string, FakeBehavior> behaviors_;  // read-only
};

// --- the acceptance property: loopback fleet == in-process ------------------

TEST(Scheduler, LoopbackFleetMatchesInProcessBitForBitOn64Cells) {
  const auto spec = spec64();
  ASSERT_EQ(cell_count(spec), 64u);
  const auto reference = BatchEngine({.workers = 2}).run(spec);

  SchedulerOptions options;
  options.hosts = {"loopback", "loopback"};
  const auto outcome = Scheduler(options).run(spec);
  expect_all_identical(spec, outcome.results, reference);

  // Both hosts really served work and every cell is attributed.
  ASSERT_EQ(outcome.hosts.size(), 2u);
  for (const auto& host : outcome.hosts) {
    EXPECT_TRUE(host.connected);
    EXPECT_FALSE(host.died);
    EXPECT_GT(host.shards, 0u);
  }
  for (const auto owner : outcome.cell_host) EXPECT_GE(owner, 0);

  // Aggregate stats agree with the in-process report on every
  // non-timing statistic.
  const auto want = SweepReport::build(spec, reference);
  const auto merged = merge_host_reports(spec, outcome);
  EXPECT_EQ(merged.run_count, want.run_count);
  EXPECT_EQ(merged.failed_count, 0u);
  ASSERT_EQ(merged.cells.size(), want.cells.size());
  for (std::size_t i = 0; i < merged.cells.size(); ++i) {
    EXPECT_EQ(merged.cells[i].best_fitness.mean(),
              want.cells[i].best_fitness.mean());  // bitwise
    EXPECT_EQ(merged.cells[i].worst_snr_db.max(),
              want.cells[i].worst_snr_db.max());
    EXPECT_EQ(merged.cells[i].evaluations.mean(),
              want.cells[i].evaluations.mean());
  }

  // The fleet merge rules: wall is the max across hosts (they ran side
  // by side), cpu is the sum of what each host accepted.
  double max_wall = 0.0;
  double cpu_sum = 0.0;
  for (const auto& host : outcome.hosts) {
    max_wall = std::max(max_wall, host.wall_seconds);
    cpu_sum += host.cpu_seconds;
  }
  EXPECT_EQ(merged.wall_seconds, max_wall);
  EXPECT_NEAR(merged.cpu_seconds, cpu_sum, 1e-9);
}

TEST(Scheduler, LoopbackFleetRunsSampleKindBitIdenticalToInProcess) {
  // The Sample task kind through the full remote path: framed sampling
  // shards out, constant-size DistributionResult blocks back, merged
  // sub-cells bit-identical to the in-process backend whatever the
  // fleet size. 2 apps x 4 sub-cells (seeds).
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_workload("p6", pipeline_cg(6))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(5, 4)
      .use_sampling({.samples_per_cell = 40});
  const auto reference = BatchEngine({.workers = 1}).run(spec);

  for (const std::size_t hosts : {1u, 2u}) {
    SchedulerOptions options;
    options.hosts.assign(hosts, "loopback");
    options.cells_per_shard = 2;
    const auto outcome = Scheduler(options).run(spec);
    ASSERT_EQ(outcome.results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& got = outcome.results[i];
      const auto& want = reference[i];
      ASSERT_EQ(got.status, CellStatus::Ok) << got.error;
      EXPECT_EQ(got.seed, want.seed);
      EXPECT_EQ(got.distribution.samples, want.distribution.samples);
      ASSERT_EQ(got.distribution.metrics.size(),
                want.distribution.metrics.size());
      for (std::size_t m = 0; m < want.distribution.metrics.size(); ++m) {
        const auto& g = got.distribution.metrics[m];
        const auto& w = want.distribution.metrics[m];
        EXPECT_EQ(g.metric, w.metric);
        ASSERT_EQ(g.histogram.bins(), w.histogram.bins());
        EXPECT_EQ(g.histogram.underflow(), w.histogram.underflow());
        EXPECT_EQ(g.histogram.overflow(), w.histogram.overflow());
        for (std::size_t b = 0; b < g.histogram.bins(); ++b)
          EXPECT_EQ(g.histogram.count(b), w.histogram.count(b));
        EXPECT_EQ(g.stats.count(), w.stats.count());
        EXPECT_EQ(g.stats.mean(), w.stats.mean());  // bitwise
        EXPECT_EQ(g.stats.sum_squared_deviations(),
                  w.stats.sum_squared_deviations());
        EXPECT_EQ(g.stats.min(), w.stats.min());
        EXPECT_EQ(g.stats.max(), w.stats.max());
      }
    }
    // Merged per app (seeds are the innermost dimension: contiguous),
    // compared with the library's bit-identity comparator.
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
      const auto merged_got = merge_cell_distributions(
          outcome.results, w * spec.seeds.size(), spec.seeds.size());
      const auto merged_want = merge_cell_distributions(
          reference, w * spec.seeds.size(), spec.seeds.size());
      EXPECT_EQ(merged_got.samples,
                spec.sampling.samples_per_cell * spec.seeds.size());
      EXPECT_TRUE(identical_distributions(merged_got, merged_want));
    }
  }
}

// --- the capacity handshake -------------------------------------------------

TEST(Scheduler, LoopbackWorkersAdvertiseHardwareCapacity) {
  // serve_connection's hello reply carries `capacity N` (hardware
  // threads by default); the scheduler parses it into HostReport.
  const auto spec = spec8();
  SchedulerOptions options;
  options.hosts = {"loopback", "loopback"};
  const auto outcome = Scheduler(options).run(spec);
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::size_t expected = hardware > 0 ? hardware : 1;
  for (const auto& host : outcome.hosts) {
    ASSERT_TRUE(host.connected);
    EXPECT_EQ(host.capacity, expected);
  }
}

TEST(Scheduler, BareHelloPeersCountAsCapacityOne) {
  // FakeConnection answers with the bare pre-capacity hello: the
  // missing field must parse as capacity 1, not kill the host — the
  // old/new interop rule.
  const auto spec = spec8();
  SchedulerOptions options;
  options.hosts = {"legacy"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{});
  const auto outcome = Scheduler(options).run(spec);
  ASSERT_TRUE(outcome.hosts[0].connected);
  EXPECT_FALSE(outcome.hosts[0].died);
  EXPECT_EQ(outcome.hosts[0].capacity, 1u);
  for (const auto& result : outcome.results)
    EXPECT_EQ(result.status, CellStatus::Ok);
}

TEST(Scheduler, CapacityWeightedFleetDealsProportionallyAndStaysIdentical) {
  // A 1-vs-8 fake fleet over 16 cells in 8 units of 2. With stealing
  // and speculation off, each host serves exactly its dealt block:
  // largest remainder hands the small host 1 unit (2 cells) and the
  // big host 7 units (14 cells) — and the merged results are still
  // bit-identical to the in-process run.
  auto spec = spec8();
  spec.seeds.clear();
  spec.add_seed_range(1, 8);
  ASSERT_EQ(cell_count(spec), 16u);
  const auto reference = BatchEngine({.workers = 1}).run(spec);

  SchedulerOptions options;
  options.hosts = {"small", "big"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{
          {"small", {.advertise_capacity = 1}},
          {"big", {.advertise_capacity = 8}}});
  options.cells_per_shard = 2;
  options.allow_steal = false;
  options.speculate_after_seconds = -1.0;
  const auto outcome = Scheduler(options).run(spec);

  expect_all_identical(spec, outcome.results, reference);
  EXPECT_EQ(outcome.hosts[0].capacity, 1u);
  EXPECT_EQ(outcome.hosts[1].capacity, 8u);
  std::size_t small_cells = 0;
  std::size_t big_cells = 0;
  for (const auto owner : outcome.cell_host)
    (owner == 0 ? small_cells : big_cells) += 1;
  EXPECT_EQ(small_cells, 2u);
  EXPECT_EQ(big_cells, 14u);
  // The small host's block is the grid prefix (contiguous dealing).
  EXPECT_EQ(outcome.cell_host[0], 0);
  EXPECT_EQ(outcome.cell_host[1], 0);
}

TEST(Service, HelloWithUnknownFieldsStillHandshakes) {
  // A future scheduler may append fields to its hello; today's worker
  // must prefix-match instead of exact-match. Drive serve_connection
  // directly over a socketpair.
  auto transport = make_transport();
  auto conn = transport->connect("loopback");
  ASSERT_TRUE(conn->send(std::string(kSchedHello) + " future-field 7"));
  const auto reply = conn->recv(10.0);
  ASSERT_EQ(reply.status, Connection::RecvStatus::Ok);
  EXPECT_TRUE(reply.payload.rfind(kSchedHello, 0) == 0);
  EXPECT_NE(reply.payload.find("capacity"), std::string::npos);
  ASSERT_TRUE(conn->send(kSchedQuit));
  conn->close();
}

TEST(BatchEngine, RemoteBackendRunsOnLoopbackWorkers) {
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  const auto remote =
      BatchEngine({.backend = BatchBackend::Remote,
                   .remote_hosts = {"loopback", "loopback"}})
          .run(spec);
  expect_all_identical(spec, remote, reference);
}

TEST(BatchEngine, RemoteBackendWithoutHostsThrows) {
  EXPECT_THROW((void)BatchEngine({.backend = BatchBackend::Remote})
                   .run(spec8()),
               ExecError);
}

// --- fleet failure paths (scripted transport) -------------------------------

TEST(Scheduler, InjectedWorkerDeathFailsOverToTheSurvivor) {
  const auto spec = spec64();
  const auto reference = BatchEngine({.workers = 2}).run(spec);

  SchedulerOptions options;
  options.hosts = {"dying", "healthy"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"dying", {.die_after_cells = 5}}});
  options.allow_steal = false;  // the dying host must meet its fate
  options.speculate_after_seconds = -1.0;
  const auto outcome = Scheduler(options).run(spec);

  // The mid-sweep death loses nothing: the in-flight cell is recovered
  // by retry on the surviving host, bit-identically.
  expect_all_identical(spec, outcome.results, reference);
  EXPECT_TRUE(outcome.hosts[0].died);
  EXPECT_FALSE(outcome.hosts[1].died);
  EXPECT_GE(outcome.pool.retries, 1u);
  EXPECT_EQ(merge_host_reports(spec, outcome).failed_count, 0u);
  // The dead host settled exactly what it emitted before dying.
  EXPECT_EQ(outcome.hosts[0].cells_ok + outcome.hosts[0].cells_failed, 5u);
}

TEST(Scheduler, UnreachableHostIsRetiredAndTheFleetCarriesOn) {
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);

  SchedulerOptions options;
  options.hosts = {"refused", "healthy"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"refused",
                                           {.refuse_connect = true}}});
  const auto outcome = Scheduler(options).run(spec);
  expect_all_identical(spec, outcome.results, reference);
  EXPECT_FALSE(outcome.hosts[0].connected);
  EXPECT_FALSE(outcome.hosts[0].error.empty());
  for (const auto owner : outcome.cell_host) EXPECT_EQ(owner, 1);
}

TEST(Scheduler, StragglerIsRetriedAndItsLateAnswersAreDeduplicated) {
  // 16 cells in 4 units, equal weights: the straggler owns the first
  // two units, so when its delayed unit-0 answers finally arrive the
  // sweep is still open (its second unit is queued behind them) and
  // the late frames must flow through the dedup path rather than the
  // settled-sweep early exit.
  auto spec = spec8();
  spec.seeds.clear();
  spec.add_seed_range(1, 8);
  ASSERT_EQ(cell_count(spec), 16u);
  const auto reference = BatchEngine({.workers = 1}).run(spec);

  SchedulerOptions options;
  options.hosts = {"straggler", "fast"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{
          {"straggler", {.answer_delay_seconds = 0.5}}});
  options.cells_per_shard = 4;
  options.allow_steal = false;
  options.speculate_after_seconds = 0.05;  // clone the straggler quickly
  const auto outcome = Scheduler(options).run(spec);

  // No cell is lost or double-counted: the clone's answers win, the
  // straggler's arrive later and are dropped.
  expect_all_identical(spec, outcome.results, reference);
  EXPECT_GE(outcome.pool.speculations, 1u);
  EXPECT_GE(outcome.pool.duplicates, 1u);
  EXPECT_FALSE(outcome.hosts[0].died);  // slow, not dead
  const auto merged = merge_host_reports(spec, outcome);
  EXPECT_EQ(merged.run_count, outcome.results.size());
  EXPECT_EQ(merged.failed_count, 0u);
}

TEST(Scheduler, WedgedFleetTimesOutIntoFailedCount) {
  const auto spec = spec8();
  SchedulerOptions options;
  options.hosts = {"wedged"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"wedged", {.black_hole = true}}});
  options.max_attempts = 1;
  options.cell_timeout_seconds = 0.3;
  options.speculate_after_seconds = -1.0;
  const auto outcome = Scheduler(options).run(spec);

  // Every cell failed loudly; the in-flight unit's cells carry the
  // abandonment diagnostic, the never-dispatched unit's cells the
  // no-live-host one. Nothing vanishes.
  std::size_t abandoned = 0;
  std::size_t unrouted = 0;
  for (const auto& result : outcome.results) {
    EXPECT_EQ(result.status, CellStatus::Failed);
    if (result.error.find("abandoned") != std::string::npos) ++abandoned;
    if (result.error.find("no live host") != std::string::npos) ++unrouted;
  }
  EXPECT_EQ(abandoned, 4u);  // the unit in flight when the host wedged
  EXPECT_EQ(unrouted, 4u);   // the unit still queued behind it
  EXPECT_TRUE(outcome.hosts[0].died);
  EXPECT_NE(outcome.hosts[0].error.find("timeout"), std::string::npos)
      << outcome.hosts[0].error;
  const auto report = merge_host_reports(spec, outcome);
  EXPECT_EQ(report.failed_count, outcome.results.size());
  EXPECT_EQ(report.run_count, 0u);
}

TEST(Scheduler, WholeFleetDeadFailsEveryCellNotSilently) {
  const auto spec = spec8();
  SchedulerOptions options;
  options.hosts = {"down-a", "down-b"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{
          {"down-a", {.refuse_connect = true}},
          {"down-b", {.refuse_connect = true}}});
  const auto outcome = Scheduler(options).run(spec);
  ASSERT_EQ(outcome.results.size(), cell_count(spec));
  for (const auto& result : outcome.results) {
    EXPECT_EQ(result.status, CellStatus::Failed);
    EXPECT_NE(result.error.find("no live host"), std::string::npos);
  }
  EXPECT_EQ(merge_host_reports(spec, outcome).failed_count,
            outcome.results.size());
}

// --- report merging ---------------------------------------------------------

TEST(Aggregate, MergeConcurrentTakesMaxWallAndSumsCpu) {
  const auto spec = spec8();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  std::vector<CellResult> even, odd;
  for (const auto& result : results)
    (result.cell.index % 2 == 0 ? even : odd).push_back(result);

  auto concurrent = SweepReport::build(spec, even, 4.0);
  concurrent.merge_concurrent(SweepReport::build(spec, odd, 2.5));
  EXPECT_EQ(concurrent.wall_seconds, 4.0);  // max: the hosts overlapped
  EXPECT_EQ(concurrent.run_count, results.size());

  auto sequential = SweepReport::build(spec, even, 4.0);
  sequential.merge(SweepReport::build(spec, odd, 2.5));
  EXPECT_EQ(sequential.wall_seconds, 6.5);  // sum: back-to-back shards
  EXPECT_NEAR(concurrent.cpu_seconds, sequential.cpu_seconds, 1e-12);
}

// --- the worker's internal exec pool ----------------------------------------

TEST(Scheduler, WorkerInternalPoolStaysBitIdenticalForBothTaskKinds) {
  // A worker whose shard cells run 8-at-a-time on its internal exec
  // pool streams frames in settle order, not slice order; the
  // scheduler's index-matching and first-wins dedup must still produce
  // results bit-identical to the serial in-process backend.
  const auto pooled = std::make_shared<LoopbackTransport>([](Connection& conn) {
    ServiceOptions service;
    service.exec_threads = 8;
    service.advertised_capacity = 8;
    return serve_connection(conn, service);
  });

  // Optimize kind, 64 cells in 16-cell slices (wide enough that the
  // pool genuinely interleaves).
  const auto spec = spec64();
  const auto reference = BatchEngine({.workers = 2}).run(spec);
  SchedulerOptions options;
  options.hosts = {"loopback"};
  options.transport = pooled;
  options.cells_per_shard = 16;
  const auto outcome = Scheduler(options).run(spec);
  ASSERT_EQ(outcome.hosts.size(), 1u);
  EXPECT_EQ(outcome.hosts[0].capacity, 8u);
  EXPECT_EQ(outcome.hosts[0].cells_ok, cell_count(spec));
  expect_all_identical(spec, outcome.results, reference);

  // Sample kind through the same pooled worker: merged distributions
  // bit-identical to in-process.
  SweepSpec sampling;
  sampling.add_workload("p5", pipeline_cg(5))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(5, 4)
      .use_sampling({.samples_per_cell = 40});
  const auto sample_reference = BatchEngine({.workers = 1}).run(sampling);
  SchedulerOptions sample_options;
  sample_options.hosts = {"loopback"};
  sample_options.transport = pooled;
  sample_options.cells_per_shard = 4;
  const auto sampled = Scheduler(sample_options).run(sampling);
  ASSERT_EQ(sampled.results.size(), sample_reference.size());
  for (const auto& result : sampled.results)
    ASSERT_EQ(result.status, CellStatus::Ok) << result.error;
  EXPECT_TRUE(identical_distributions(
      merge_cell_distributions(sampled.results, 0, sampled.results.size()),
      merge_cell_distributions(sample_reference, 0,
                               sample_reference.size())));
}

// --- the settled-cell journal ------------------------------------------------

std::string temp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(Journal, MissingEmptyAndHeaderOnlyFilesReplayToNothing) {
  const std::string path = temp_journal("journal_fresh");
  EXPECT_TRUE(replay_journal(path, 0x1234u, 8).cells.empty());

  // An empty file (created, never written) is the same fresh start.
  { std::ofstream touch(path); }
  EXPECT_TRUE(replay_journal(path, 0x1234u, 8).cells.empty());

  // The writer stamps the header; a header-only journal holds no cells.
  { JournalWriter writer(path, 0x1234u); }
  const auto replay = replay_journal(path, 0x1234u, 8);
  EXPECT_TRUE(replay.cells.empty());
  EXPECT_EQ(replay.duplicates, 0u);
}

TEST(Journal, AdversarialReplaysAreExplicitErrorsNeverSilentReuse) {
  const auto spec = spec8();
  const auto cells = expand(spec);
  const std::uint64_t hash = journal_spec_hash(spec, EvaluatorOptions{});
  const std::string path = temp_journal("journal_adversarial");

  const auto write_journal = [&](const std::vector<std::size_t>& indices) {
    std::remove(path.c_str());
    JournalWriter writer(path, hash);
    for (const auto index : indices) {
      std::ostringstream block;
      write_cell_result(block,
                        make_failed_cell(spec, cells[index], "seeded"));
      writer.append(block.str());
    }
  };
  const auto mutate_file = [&](const auto& mutation) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    std::string bytes = slurp.str();
    mutation(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  };

  // Truncated final record: the writer died mid-append.
  write_journal({0, 1});
  mutate_file([](std::string& bytes) { bytes.resize(bytes.size() - 7); });
  EXPECT_THROW((void)replay_journal(path, hash, cells.size()), JournalError);

  // Checksum corruption inside a record's payload.
  write_journal({0});
  mutate_file([](std::string& bytes) { bytes[bytes.size() - 3] ^= 0x20; });
  EXPECT_THROW((void)replay_journal(path, hash, cells.size()), JournalError);

  // A journal keyed to a different sweep must never replay.
  write_journal({0});
  EXPECT_THROW((void)replay_journal(path, hash + 1, cells.size()),
               JournalError);

  // A record that settles a cell outside this sweep's grid.
  write_journal({5});
  EXPECT_THROW((void)replay_journal(path, hash, 3), JournalError);

  // Duplicate records replay first-wins, exactly like the live stream.
  write_journal({2, 2, 3});
  const auto replay = replay_journal(path, hash, cells.size());
  EXPECT_EQ(replay.cells.size(), 2u);
  EXPECT_EQ(replay.duplicates, 1u);
  EXPECT_EQ(replay.cells[0].cell.index, 2u);
  EXPECT_EQ(replay.cells[1].cell.index, 3u);
}

TEST(Scheduler, JournalResumeSkipsSettledCellsAndStaysIdentical) {
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  const std::string path = temp_journal("journal_resume");

  // Run 1: the lone host dies after 5 cells with retries off — the 5
  // answered cells are journaled, the stranded tail fails.
  SchedulerOptions first;
  first.hosts = {"dying"};
  first.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"dying", {.die_after_cells = 5}}});
  first.max_attempts = 1;
  first.cells_per_shard = 8;  // one unit, so the death strands the tail
  first.journal_path = path;
  const auto crashed = Scheduler(first).run(spec);
  std::size_t ok = 0;
  for (const auto& result : crashed.results)
    ok += result.status == CellStatus::Ok;
  ASSERT_EQ(ok, 5u);
  EXPECT_EQ(crashed.journaled, 0u);  // nothing pre-existed

  // Run 2: healthy host, same journal. The 5 settled cells replay
  // (scheduler-side failures were NOT journaled, so the healthier
  // fleet retries them) and the merged outcome is bit-identical.
  SchedulerOptions second;
  second.hosts = {"healthy"};
  second.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{});
  second.journal_path = path;
  const auto resumed = Scheduler(second).run(spec);
  EXPECT_EQ(resumed.journaled, 5u);
  expect_all_identical(spec, resumed.results, reference);
  std::size_t replayed = 0;
  for (const auto owner : resumed.cell_host)
    replayed += owner == kCellHostJournal;
  EXPECT_EQ(replayed, 5u);
  // Only the unsettled remainder re-executed.
  EXPECT_EQ(resumed.hosts[0].cells_ok, cell_count(spec) - 5);

  const auto merged = merge_host_reports(spec, resumed);
  EXPECT_EQ(merged.run_count, cell_count(spec));
  EXPECT_EQ(merged.failed_count, 0u);

  // Run 3: everything journaled now — a pure replay executes nothing.
  const auto pure = Scheduler(second).run(spec);
  EXPECT_EQ(pure.journaled, cell_count(spec));
  EXPECT_EQ(pure.hosts[0].cells_ok, 0u);
  expect_all_identical(spec, pure.results, reference);
}

TEST(Scheduler, ReplayOverlapDuplicatesAreCountedExactlyOnce) {
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  const std::string path = temp_journal("journal_overlap");

  // Journal exactly one mid-unit cell (index 1). The live unit [0,4)
  // only trims its settled *prefix*, so the worker re-executes cell 1
  // and its wire answer collides with the replay — first-wins must
  // count it exactly once.
  {
    JournalWriter writer(path, journal_spec_hash(spec, EvaluatorOptions{}));
    std::ostringstream block;
    write_cell_result(block, reference[1]);
    writer.append(block.str());
  }
  SchedulerOptions options;
  options.hosts = {"healthy"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{});
  options.journal_path = path;
  const auto outcome = Scheduler(options).run(spec);
  EXPECT_EQ(outcome.journaled, 1u);
  EXPECT_EQ(outcome.cell_host[1], kCellHostJournal);
  EXPECT_EQ(outcome.hosts[0].duplicates, 1u);
  expect_all_identical(spec, outcome.results, reference);

  const auto merged = merge_host_reports(spec, outcome);
  EXPECT_EQ(merged.run_count, cell_count(spec));  // counted once, not twice
  EXPECT_EQ(merged.failed_count, 0u);
}

TEST(Scheduler, AllHostsDeadStillKeepsJournaledCells) {
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  const std::string path = temp_journal("journal_dead_fleet");
  {
    JournalWriter writer(path, journal_spec_hash(spec, EvaluatorOptions{}));
    for (const auto index : {2u, 6u}) {
      std::ostringstream block;
      write_cell_result(block, reference[index]);
      writer.append(block.str());
    }
  }
  SchedulerOptions options;
  options.hosts = {"down"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"down", {.refuse_connect = true}}});
  options.journal_path = path;
  const auto outcome = Scheduler(options).run(spec);
  EXPECT_EQ(outcome.journaled, 2u);
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (i == 2 || i == 6) {
      EXPECT_EQ(outcome.results[i].status, CellStatus::Ok);
      EXPECT_EQ(outcome.cell_host[i], kCellHostJournal);
    } else {
      EXPECT_EQ(outcome.results[i].status, CellStatus::Failed);
      EXPECT_NE(outcome.results[i].error.find("no live host"),
                std::string::npos);
    }
  }
  const auto merged = merge_host_reports(spec, outcome);
  EXPECT_EQ(merged.run_count, 2u);
  EXPECT_EQ(merged.failed_count, cell_count(spec) - 2);
  EXPECT_EQ(merged.run_count + merged.failed_count, cell_count(spec));
}

TEST(Scheduler, JournalForADifferentSweepRefusesToRun) {
  const auto spec = spec8();
  const std::string path = temp_journal("journal_wrong_sweep");
  {
    JournalWriter writer(path, journal_spec_hash(spec, EvaluatorOptions{}));
  }
  SchedulerOptions options;
  options.hosts = {"healthy"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{});
  options.journal_path = path;
  // Same journal, different sweep: a structured error, not partial reuse.
  EXPECT_THROW((void)Scheduler(options).run(spec64()), ExecError);
}

// --- dynamic admission -------------------------------------------------------

TEST(HostPool, AddHostJoinsTheLedgerAndPullsWorkThroughEveryPath) {
  // 1 initial host, 8 cells in units of 2, immediate speculation.
  HostPool pool(1, 8, 2, 3, 0.0);
  const auto straggler = pool.acquire(0);  // [0,2) in flight, never done
  ASSERT_TRUE(straggler);

  const auto h = pool.add_host();
  EXPECT_EQ(h, 1u);
  // The joiner starts with nothing of its own and steals the tail...
  for (const auto expected_begin : {6u, 4u, 2u}) {
    const auto unit = pool.acquire(1);
    ASSERT_TRUE(unit);
    EXPECT_EQ(unit->begin, expected_begin);
    for (std::size_t i = unit->begin; i < unit->end; ++i)
      EXPECT_TRUE(pool.complete_cell(i));
    pool.finish_unit(1);
  }
  EXPECT_EQ(pool.host_counters(1).stolen_units, 3u);
  // ...then clones the straggler's in-flight unit.
  const auto clone = pool.acquire(1);
  ASSERT_TRUE(clone);
  EXPECT_EQ(clone->begin, 0u);
  EXPECT_EQ(clone->attempt, 1u);
  EXPECT_EQ(pool.host_counters(1).speculated_units, 1u);
  for (std::size_t i = clone->begin; i < clone->end; ++i)
    EXPECT_TRUE(pool.complete_cell(i));
  pool.finish_unit(1);
  EXPECT_TRUE(pool.all_settled());
  EXPECT_FALSE(pool.acquire(0));
  EXPECT_EQ(pool.host_counters(0).stolen_units, 0u);
}

TEST(Scheduler, LateAdmittedWorkerAbsorbsAWedgedSweep) {
  // The configured fleet is one wedged host (accepts shards, never
  // answers). A worker joining through the admission port mid-sweep
  // must steal the queued work, speculate on the wedged unit, and
  // settle every cell — bit-identical to in-process — while the wedged
  // host exits via sweep-settled, not via its (long) cell timeout.
  const auto spec = spec8();
  const auto reference = BatchEngine({.workers = 1}).run(spec);

  SchedulerOptions options;
  options.hosts = {"wedged"};
  options.transport = std::make_shared<FakeTransport>(
      std::map<std::string, FakeBehavior>{{"wedged", {.black_hole = true}}});
  options.cell_timeout_seconds = 120.0;  // only sweep-settled can end it
  options.speculate_after_seconds = 0.0;
  options.max_attempts = 3;
  options.admit_port = 0;  // ephemeral; read back through the callback
  std::promise<std::uint16_t> admit_port;
  options.on_admit_port = [&](std::uint16_t port) {
    admit_port.set_value(port);
  };

  ScheduleResult outcome;
  std::thread sweep([&] { outcome = Scheduler(options).run(spec); });
  const auto port = admit_port.get_future().get();

  // The late worker: what `phonoc_workerd --join=127.0.0.1:PORT` does.
  TcpTransport dialer;
  auto conn = dialer.connect("127.0.0.1:" + std::to_string(port));
  ASSERT_TRUE(conn);
  ServiceOptions service;
  service.exec_threads = 2;
  service.advertised_capacity = 2;
  const auto served = serve_connection(*conn, service);
  conn->close();
  sweep.join();

  EXPECT_EQ(served, cell_count(spec));
  expect_all_identical(spec, outcome.results, reference);
  ASSERT_EQ(outcome.hosts.size(), 2u);
  EXPECT_FALSE(outcome.hosts[0].admitted_late);
  EXPECT_EQ(outcome.hosts[0].cells_ok, 0u);
  const auto& joiner = outcome.hosts[1];
  EXPECT_TRUE(joiner.admitted_late);
  EXPECT_TRUE(joiner.connected);
  EXPECT_EQ(joiner.endpoint, "admitted#0");
  EXPECT_EQ(joiner.capacity, 2u);
  EXPECT_EQ(joiner.cells_ok, cell_count(spec));
  // It reached the work through the ledger, not an initial deal.
  EXPECT_GT(joiner.steals + joiner.speculations + joiner.retries, 0u);
  for (const auto owner : outcome.cell_host) EXPECT_EQ(owner, 1);
}

}  // namespace
}  // namespace phonoc
