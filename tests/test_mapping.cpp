// Tests for the Mapping representation and the objectives.

#include <gtest/gtest.h>

#include "graph/comm_graph.hpp"
#include "mapping/mapping.hpp"
#include "mapping/objective.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace phonoc {
namespace {

TEST(Mapping, IdentityLayout) {
  const auto m = Mapping::identity(3, 5);
  EXPECT_EQ(m.task_count(), 3u);
  EXPECT_EQ(m.tile_count(), 5u);
  for (NodeId t = 0; t < 3; ++t) EXPECT_EQ(m.tile_of(t), t);
  EXPECT_EQ(m.task_at(0), 0);
  EXPECT_EQ(m.task_at(4), -1);
}

TEST(Mapping, RandomIsInjective) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto m = Mapping::random(6, 9, rng);
    std::vector<bool> used(9, false);
    for (NodeId t = 0; t < 6; ++t) {
      const auto tile = m.tile_of(t);
      ASSERT_LT(tile, 9u);
      ASSERT_FALSE(used[tile]);
      used[tile] = true;
      EXPECT_EQ(m.task_at(tile), static_cast<int>(t));
    }
  }
}

TEST(Mapping, RandomCoversDifferentLayouts) {
  Rng rng(6);
  const auto a = Mapping::random(4, 16, rng);
  const auto b = Mapping::random(4, 16, rng);
  EXPECT_FALSE(a == b);  // astronomically unlikely to collide
}

TEST(Mapping, FromAssignmentValidates) {
  EXPECT_NO_THROW(Mapping::from_assignment({2, 0, 1}, 4));
  EXPECT_THROW(Mapping::from_assignment({0, 0}, 4), InvalidArgument);
  EXPECT_THROW(Mapping::from_assignment({0, 9}, 4), InvalidArgument);
  EXPECT_THROW(Mapping::from_assignment({0, 1, 2, 3, 0}, 4),
               InvalidArgument);  // more tasks than tiles
}

TEST(Mapping, SwapTilesTaskTask) {
  auto m = Mapping::identity(3, 4);
  m.swap_tiles(0, 2);
  EXPECT_EQ(m.tile_of(0), 2u);
  EXPECT_EQ(m.tile_of(2), 0u);
  EXPECT_EQ(m.task_at(0), 2);
  EXPECT_EQ(m.task_at(2), 0);
  EXPECT_EQ(m.tile_of(1), 1u);  // untouched
}

TEST(Mapping, SwapTilesTaskEmpty) {
  auto m = Mapping::identity(2, 4);
  m.swap_tiles(1, 3);  // task 1 moves to the empty tile 3
  EXPECT_EQ(m.tile_of(1), 3u);
  EXPECT_EQ(m.task_at(1), -1);
  EXPECT_EQ(m.task_at(3), 1);
}

TEST(Mapping, SwapTilesEmptyEmptyAndSelf) {
  auto m = Mapping::identity(1, 4);
  const auto before = m;
  m.swap_tiles(2, 3);  // both empty
  EXPECT_TRUE(m == before);
  m.swap_tiles(1, 1);  // self swap
  EXPECT_TRUE(m == before);
}

TEST(Mapping, MoveTask) {
  auto m = Mapping::identity(2, 4);
  m.move_task(0, 3);
  EXPECT_EQ(m.tile_of(0), 3u);
  EXPECT_EQ(m.task_at(0), -1);
  EXPECT_THROW(m.move_task(1, 3), InvalidArgument);  // occupied
}

TEST(Mapping, InverseStaysConsistentUnderManySwaps) {
  Rng rng(9);
  auto m = Mapping::random(5, 9, rng);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<TileId>(rng.next_below(9));
    const auto b = static_cast<TileId>(rng.next_below(9));
    m.swap_tiles(a, b);
  }
  for (NodeId t = 0; t < 5; ++t)
    EXPECT_EQ(m.task_at(m.tile_of(t)), static_cast<int>(t));
  int occupied = 0;
  for (TileId tile = 0; tile < 9; ++tile)
    if (m.task_at(tile) >= 0) ++occupied;
  EXPECT_EQ(occupied, 5);
}

// --- objectives -------------------------------------------------------------------

EvaluationResult sample_result() {
  EvaluationResult r;
  r.worst_loss_db = -2.5;
  r.worst_snr_db = 18.0;
  return r;
}

TEST(Objective, WorstLossFitness) {
  const WorstLossObjective objective;
  EXPECT_DOUBLE_EQ(objective.fitness(sample_result()), -2.5);
  EXPECT_FALSE(objective.needs_detail());
  EXPECT_EQ(objective.name(), "worst_loss");
  // A mapping with less loss must score higher.
  auto better = sample_result();
  better.worst_loss_db = -1.0;
  EXPECT_GT(objective.fitness(better), objective.fitness(sample_result()));
}

TEST(Objective, WorstSnrFitness) {
  const WorstSnrObjective objective;
  EXPECT_DOUBLE_EQ(objective.fitness(sample_result()), 18.0);
  auto better = sample_result();
  better.worst_snr_db = 30.0;
  EXPECT_GT(objective.fitness(better), objective.fitness(sample_result()));
}

TEST(Objective, CompositeBlends) {
  const CompositeObjective objective(2.0, 0.5);
  EXPECT_DOUBLE_EQ(objective.fitness(sample_result()),
                   2.0 * -2.5 + 0.5 * 18.0);
  EXPECT_THROW(CompositeObjective(0.0, 0.0), InvalidArgument);
  EXPECT_THROW(CompositeObjective(-1.0, 1.0), InvalidArgument);
}

TEST(Objective, BandwidthWeightedLoss) {
  CommGraph cg("w");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_task("c");
  cg.add_communication("a", "b", 300.0);  // weight 0.75
  cg.add_communication("b", "c", 100.0);  // weight 0.25
  const BandwidthWeightedLossObjective objective(cg);
  EXPECT_TRUE(objective.needs_detail());
  EvaluationResult r;
  r.edges.resize(2);
  r.edges[0].loss_db = -2.0;
  r.edges[1].loss_db = -4.0;
  EXPECT_NEAR(objective.fitness(r), 0.75 * -2.0 + 0.25 * -4.0, 1e-12);
  // Missing detail is an error, not a silent 0.
  EXPECT_THROW((void)objective.fitness(sample_result()), InvalidArgument);
}

TEST(Objective, FactoryMatchesGoals) {
  EXPECT_EQ(make_objective(OptimizationGoal::InsertionLoss)->name(),
            "worst_loss");
  EXPECT_EQ(make_objective(OptimizationGoal::Snr)->name(), "worst_snr");
  EXPECT_EQ(to_string(OptimizationGoal::InsertionLoss), "insertion_loss");
  EXPECT_EQ(to_string(OptimizationGoal::Snr), "snr");
}

}  // namespace
}  // namespace phonoc
