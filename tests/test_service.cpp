// Tests of the phonocd mapping service (src/service/): protocol
// round-trips and structured rejections, FrameDecoder behavior on
// adversarial byte streams (truncated prefixes, corrupt checksums,
// hostile declared lengths, interleaved partial feeds), RequestBroker
// admission control made deterministic through the pause()/resume()
// hook, FairScheduler lane + deficit-round-robin mechanics, broker
// scheduling (per-client fairness, lane routing, per-client caps,
// per-job in-flight accounting, bit-identity under a concurrent
// request pool), cross-request evaluator-memo reuse, and serve_client()
// end to end over real socketpairs: concurrent Optimize + Sample clients
// bit-identical to an in-process BatchEngine run, and a vanished client
// canceling its job instead of hanging the connection handler.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "exec/batch_engine.hpp"
#include "exec/serialize.hpp"
#include "exec/sweep.hpp"
#include "sched/transport.hpp"
#include "service/broker.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

constexpr auto kWaitLimit = std::chrono::seconds(60);

/// 1 workload x 1 topology x 1 goal x 2 optimizers x 1 budget x 2
/// seeds = 4 Optimize cells, evaluation-count budget (the determinism
/// contract).
SweepSpec opt_spec() {
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(30)
      .add_seed_range(1, 2);
  return spec;
}

/// 2 Sample cells over the same problem as opt_spec (seeds differ).
SweepSpec sample_spec() {
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(3, 2)
      .use_sampling({.samples_per_cell = 50});
  return spec;
}

/// Bit-exact comparison of the determinism-contract fields (timing
/// fields excluded, exactly like the sched and exec suites).
void expect_identical_cell(const CellResult& got, const CellResult& want,
                           SweepTaskKind kind) {
  ASSERT_EQ(got.status, CellStatus::Ok) << got.error;
  ASSERT_EQ(want.status, CellStatus::Ok) << want.error;
  EXPECT_EQ(got.cell.index, want.cell.index);
  EXPECT_EQ(got.seed, want.seed);
  if (kind == SweepTaskKind::Sample) {
    EXPECT_TRUE(identical_distributions(got.distribution, want.distribution));
    return;
  }
  EXPECT_EQ(got.run.algorithm, want.run.algorithm);
  EXPECT_TRUE(got.run.search.best == want.run.search.best);
  EXPECT_EQ(got.run.search.best_fitness, want.run.search.best_fitness);
  EXPECT_EQ(got.run.search.evaluations, want.run.search.evaluations);
  EXPECT_EQ(got.run.search.iterations, want.run.search.iterations);
  EXPECT_EQ(got.run.best_evaluation.worst_loss_db,
            want.run.best_evaluation.worst_loss_db);
  EXPECT_EQ(got.run.best_evaluation.worst_snr_db,
            want.run.best_evaluation.worst_snr_db);
}

// --- protocol round-trips ---------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripsThroughWriteAndParse) {
  ServiceRequest request;
  request.id = "job-42";
  request.deadline_seconds = 2.5;
  request.max_cells = 16;
  request.spec = opt_spec();
  const auto parsed = parse_request(write_request(request));
  EXPECT_EQ(parsed.id, "job-42");
  EXPECT_EQ(parsed.deadline_seconds, 2.5);
  EXPECT_EQ(parsed.max_cells, 16u);
  EXPECT_EQ(cell_count(parsed.spec), cell_count(request.spec));
  EXPECT_EQ(parsed.spec.task_kind, SweepTaskKind::Optimize);
}

TEST(ServiceProtocol, EvaluateRoundTripsWithItsAssignment) {
  EvaluateRequest request;
  request.id = "probe";
  request.assignment = {4, 2, 0, 8, 6};
  request.spec = opt_spec();
  const auto parsed = parse_evaluate(write_evaluate(request));
  EXPECT_EQ(parsed.id, "probe");
  EXPECT_EQ(parsed.assignment, (std::vector<TileId>{4, 2, 0, 8, 6}));
  EXPECT_EQ(cell_count(parsed.spec), cell_count(request.spec));
}

TEST(ServiceProtocol, RepliesRoundTripThroughParseReply) {
  const auto accepted = parse_reply(accepted_reply("a1", 8));
  EXPECT_EQ(accepted.kind, ServiceReply::Kind::Accepted);
  EXPECT_EQ(accepted.id, "a1");
  EXPECT_EQ(accepted.cells, 8u);

  const auto spec = opt_spec();
  const auto failed =
      make_failed_cell(spec, expand(spec)[1], "deliberate test failure");
  const auto cell = parse_reply(cell_reply("a1", failed));
  EXPECT_EQ(cell.kind, ServiceReply::Kind::Cell);
  EXPECT_EQ(cell.result.cell.index, 1u);
  EXPECT_EQ(cell.result.status, CellStatus::Failed);
  EXPECT_EQ(cell.result.error, "deliberate test failure");

  const auto done = parse_reply(done_reply("a1", 3, 1));
  EXPECT_EQ(done.kind, ServiceReply::Kind::Done);
  EXPECT_EQ(done.ok, 3u);
  EXPECT_EQ(done.failed, 1u);

  const auto rejected = parse_reply(
      rejected_reply("a1", RejectKind::Overloaded, "queue is full today"));
  EXPECT_EQ(rejected.kind, ServiceReply::Kind::Rejected);
  EXPECT_EQ(rejected.reject, RejectKind::Overloaded);
  EXPECT_EQ(rejected.reason, "queue is full today");

  const auto evaluation =
      parse_reply(evaluation_reply("a1", -3.25, 18.5, 2.125));
  EXPECT_EQ(evaluation.kind, ServiceReply::Kind::Evaluation);
  EXPECT_EQ(evaluation.fitness, -3.25);
  EXPECT_EQ(evaluation.snr_db, 18.5);
  EXPECT_EQ(evaluation.loss_db, 2.125);

  const auto stats = parse_reply(stats_reply("queue_depth 0\ncells_ok 7"));
  EXPECT_EQ(stats.kind, ServiceReply::Kind::Stats);
  EXPECT_EQ(stats.body, "queue_depth 0\ncells_ok 7");

  const auto error = parse_reply(error_reply("unknown request"));
  EXPECT_EQ(error.kind, ServiceReply::Kind::Error);
  EXPECT_EQ(error.body, "unknown request");
}

TEST(ServiceProtocol, RejectKindTokensRoundTrip) {
  for (const auto kind :
       {RejectKind::Overloaded, RejectKind::Budget, RejectKind::Deadline,
        RejectKind::Malformed, RejectKind::Shutdown,
        RejectKind::PerClientLimit, RejectKind::Internal})
    EXPECT_EQ(parse_reject_kind(reject_kind_token(kind)), kind);
  EXPECT_THROW((void)parse_reject_kind("nonsense"), ParseError);
}

TEST(ServiceProtocol, PriorityFieldIsOptionalOnTheWire) {
  ServiceRequest request;
  request.id = "lane";
  request.spec = opt_spec();

  // The default (Auto) priority writes the pre-lane byte format: no
  // `priority` token anywhere, so old servers parse it unchanged.
  const auto wire = write_request(request);
  EXPECT_EQ(wire.find("priority"), std::string::npos);
  EXPECT_EQ(parse_request(wire).priority, RequestPriority::Auto);

  // Explicit lanes round-trip through the optional header field.
  for (const auto priority :
       {RequestPriority::Interactive, RequestPriority::Bulk}) {
    request.priority = priority;
    const auto explicit_wire = write_request(request);
    EXPECT_NE(explicit_wire.find(
                  " priority " + std::string(priority_token(priority))),
              std::string::npos);
    EXPECT_EQ(parse_request(explicit_wire).priority, priority);
  }
  EXPECT_THROW((void)parse_priority("urgent"), ParseError);
  EXPECT_THROW(
      (void)parse_request("request j deadline 0 max_cells 0 priority "
                          "urgent\nx"),
      ParseError);
}

TEST(ServiceProtocol, BadRequestIdsAreRejected) {
  EXPECT_THROW(validate_request_id(""), ParseError);
  EXPECT_THROW(validate_request_id("has space"), ParseError);
  EXPECT_THROW(validate_request_id("has\ttab"), ParseError);
  EXPECT_THROW(validate_request_id(std::string(65, 'x')), ParseError);
  EXPECT_NO_THROW(validate_request_id(std::string(64, 'x')));

  ServiceRequest request;
  request.id = "bad id";
  request.spec = opt_spec();
  EXPECT_THROW((void)write_request(request), ParseError);
}

TEST(ServiceProtocol, MalformedPayloadsThrowStructuredErrors) {
  EXPECT_THROW((void)parse_request("request only-an-id"), ParseError);
  EXPECT_THROW((void)parse_request(
                   "request j deadline 0 max_cells 0\nnot a spec"),
               ParseError);
  // A header without any spec body at all.
  EXPECT_THROW((void)parse_request("request j deadline 0 max_cells 0"),
               ParseError);
  EXPECT_THROW((void)parse_evaluate("evaluate j tiles not-a-number\nx"),
               ParseError);
  EXPECT_THROW((void)parse_reply("gibberish frame"), ParseError);
  EXPECT_THROW((void)parse_reply(""), ParseError);
}

// --- FrameDecoder on adversarial input --------------------------------------

TEST(ServiceFraming, TruncatedLengthPrefixStaysPendingThenFailsLoudly) {
  FrameDecoder decoder;
  // A length prefix cut mid-number is indistinguishable from a slow
  // sender: the decoder must wait, not guess.
  decoder.feed("frame 10");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.has_partial());
  // But a "header" that keeps growing without a newline can only be
  // garbage; the decoder gives a diagnostic instead of buffering it
  // forever.
  decoder.feed(std::string(80, '7'));
  EXPECT_THROW((void)decoder.next(), ParseError);
}

TEST(ServiceFraming, ChecksumCorruptFrameThrows) {
  std::string frame = encode_frame("service payload under test");
  frame[frame.find("payload")] = 'q';  // flip one payload byte
  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_THROW((void)decoder.next(), ParseError);
}

TEST(ServiceFraming, OversizedDeclaredLengthIsRejectedBeforeBuffering) {
  // A hostile header declaring a >1 GiB payload must fail immediately —
  // long before any attempt to buffer or allocate that much.
  FrameDecoder decoder;
  decoder.feed("frame 1073741825 0123456789abcdef\n");
  EXPECT_THROW((void)decoder.next(), ParseError);

  FrameDecoder absurd;
  absurd.feed("frame 99999999999999999999 0123456789abcdef\n");
  EXPECT_THROW((void)absurd.next(), ParseError);
}

TEST(ServiceFraming, InterleavedPartialFeedsYieldFramesInOrder) {
  const std::string payloads[] = {"first reply", "",
                                  "third\nwith embedded newline"};
  std::string stream;
  for (const auto& payload : payloads) stream += encode_frame(payload);

  // Deliberately evil split points: inside the length digits, between
  // header and payload, inside the payload, and across frame borders.
  FrameDecoder decoder;
  std::vector<std::string> decoded;
  const std::size_t cuts[] = {3, 8, 14, 20, 27, 41, 55};
  std::size_t begin = 0;
  for (const auto cut : cuts) {
    if (cut <= begin || cut > stream.size()) continue;
    decoder.feed(std::string_view(stream).substr(begin, cut - begin));
    begin = cut;
    while (auto frame = decoder.next()) decoded.push_back(*frame);
  }
  decoder.feed(std::string_view(stream).substr(begin));
  while (auto frame = decoder.next()) decoded.push_back(*frame);

  ASSERT_EQ(decoded.size(), std::size(payloads));
  for (std::size_t i = 0; i < decoded.size(); ++i)
    EXPECT_EQ(decoded[i], payloads[i]);
  EXPECT_FALSE(decoder.has_partial());
}

// --- broker admission control -----------------------------------------------

/// Collects one request's event stream and signals its terminal event.
struct Collected {
  std::mutex mutex;
  std::vector<CellResult> cells;
  std::size_t accepted_cells = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  bool done = false;
  bool rejected = false;
  RejectKind kind = RejectKind::Internal;
  std::string reason;
  std::promise<void> terminal;

  JobEvents events() {
    JobEvents events;
    events.on_accepted = [this](std::size_t cells) {
      const std::lock_guard<std::mutex> lock(mutex);
      accepted_cells = cells;
    };
    events.on_cell = [this](const CellResult& result) {
      const std::lock_guard<std::mutex> lock(mutex);
      cells.push_back(result);
      return true;
    };
    events.on_done = [this](std::size_t ok_count, std::size_t failed_count) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        ok = ok_count;
        failed = failed_count;
        done = true;
      }
      terminal.set_value();
    };
    events.on_reject = [this](RejectKind reject_kind,
                              const std::string& why) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        rejected = true;
        kind = reject_kind;
        reason = why;
      }
      terminal.set_value();
    };
    return events;
  }

  void wait() {
    ASSERT_EQ(terminal.get_future().wait_for(kWaitLimit),
              std::future_status::ready)
        << "request never reached a terminal event";
  }
};

ServiceRequest make_request(std::string id, SweepSpec spec) {
  ServiceRequest request;
  request.id = std::move(id);
  request.spec = std::move(spec);
  return request;
}

TEST(RequestBroker, FullQueueShedsOverloadedImmediately) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.max_queue_depth = 1;
  options.start_paused = true;  // the first job stays queued
  RequestBroker broker(options);

  Collected first;
  const auto a = broker.submit(make_request("a", opt_spec()), first.events());
  ASSERT_TRUE(a.accepted);
  EXPECT_EQ(first.accepted_cells, 4u);  // fired synchronously in submit

  Collected second;
  const auto b = broker.submit(make_request("b", opt_spec()),
                               second.events());
  EXPECT_FALSE(b.accepted);
  EXPECT_EQ(b.kind, RejectKind::Overloaded);
  EXPECT_NE(b.reason.find("queue is full"), std::string::npos);

  const auto snap = broker.metrics();
  EXPECT_EQ(snap.requests_accepted, 1u);
  EXPECT_EQ(snap.shed_overloaded, 1u);
  EXPECT_EQ(snap.queue_depth, 1u);

  broker.resume();
  first.wait();
  EXPECT_TRUE(first.done);
  EXPECT_EQ(first.ok, 4u);
}

TEST(RequestBroker, OutstandingCellCapShedsBeforeQueueDepthDoes) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.max_queue_depth = 8;
  options.max_outstanding_cells = 6;  // one 4-cell grid fits, two don't
  options.start_paused = true;
  RequestBroker broker(options);

  Collected first;
  ASSERT_TRUE(
      broker.submit(make_request("a", opt_spec()), first.events()).accepted);
  Collected second;
  const auto b = broker.submit(make_request("b", opt_spec()),
                               second.events());
  EXPECT_FALSE(b.accepted);
  EXPECT_EQ(b.kind, RejectKind::Overloaded);
  EXPECT_NE(b.reason.find("exceed the cap"), std::string::npos);

  broker.resume();
  first.wait();
}

TEST(RequestBroker, CellBudgetsRejectOversizedGridsAsBudget) {
  BrokerOptions options;
  options.batch.workers = 1;
  RequestBroker broker(options);

  // The client's own cap.
  auto request = make_request("tight", opt_spec());
  request.max_cells = 2;  // the grid has 4
  const auto client_capped = broker.submit(std::move(request), {});
  EXPECT_FALSE(client_capped.accepted);
  EXPECT_EQ(client_capped.kind, RejectKind::Budget);

  // The server-side cap, independent of what the client asked for.
  BrokerOptions capped_options;
  capped_options.batch.workers = 1;
  capped_options.max_cells_per_request = 2;
  RequestBroker capped(capped_options);
  const auto server_capped =
      capped.submit(make_request("big", opt_spec()), {});
  EXPECT_FALSE(server_capped.accepted);
  EXPECT_EQ(server_capped.kind, RejectKind::Budget);
  EXPECT_EQ(capped.metrics().shed_budget, 1u);
}

TEST(RequestBroker, EmptyGridIsMalformedNotAccepted) {
  BrokerOptions options;
  options.batch.workers = 1;
  RequestBroker broker(options);
  SweepSpec empty;  // no dimensions at all: cell_count == 0
  const auto outcome = broker.submit(make_request("empty", empty), {});
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.kind, RejectKind::Malformed);
  EXPECT_EQ(broker.metrics().requests_malformed, 1u);
}

TEST(RequestBroker, ExpiredDeadlineShedsTheQueuedJob) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.start_paused = true;
  RequestBroker broker(options);

  auto request = make_request("stale", opt_spec());
  request.deadline_seconds = 0.02;
  Collected collected;
  ASSERT_TRUE(broker.submit(std::move(request), collected.events()).accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  broker.resume();
  collected.wait();
  EXPECT_TRUE(collected.rejected);
  EXPECT_EQ(collected.kind, RejectKind::Deadline);
  EXPECT_EQ(broker.metrics().shed_deadline, 1u);
  EXPECT_TRUE(collected.cells.empty());  // shed means never run
}

TEST(RequestBroker, StreamsBitIdenticalCellsAndReusesTheMemoBank) {
  const auto spec = opt_spec();
  const auto reference = BatchEngine(BatchOptions{}).run(spec);

  BrokerOptions options;
  options.batch.workers = 2;
  RequestBroker broker(options);

  for (int round = 0; round < 2; ++round) {
    Collected collected;
    ASSERT_TRUE(
        broker.submit(make_request("r" + std::to_string(round), spec),
                      collected.events())
            .accepted);
    collected.wait();
    ASSERT_TRUE(collected.done);
    EXPECT_EQ(collected.ok, reference.size());
    EXPECT_EQ(collected.failed, 0u);
    // Cells stream in completion order; restore grid order to compare.
    ASSERT_EQ(collected.cells.size(), reference.size());
    std::vector<CellResult> ordered(reference.size());
    for (auto& cell : collected.cells)
      ordered[cell.cell.index] = std::move(cell);
    for (std::size_t i = 0; i < reference.size(); ++i)
      expect_identical_cell(ordered[i], reference[i], spec.task_kind);
  }

  // The identical repeat request hit the cross-request reuse state:
  // same problems (cache hits), and its evaluations were answered from
  // the harvested memo bank.
  const auto snap = broker.metrics();
  EXPECT_EQ(snap.requests_completed, 2u);
  EXPECT_GT(snap.problem_cache_hits, 0u);
  EXPECT_GT(snap.evaluator_cache_hits, 0u);
  EXPECT_GT(snap.cells_ok, 0u);
  EXPECT_GT(snap.wall_max_seconds, 0.0);
}

TEST(RequestBroker, EvaluateScoresAMappingThroughTheSharedCache) {
  const auto spec = opt_spec();
  BrokerOptions options;
  options.batch.workers = 1;
  RequestBroker broker(options);

  EvaluateRequest request;
  request.id = "probe";
  request.spec = spec;
  request.assignment = {0, 1, 2, 3, 4};
  const auto answer = broker.evaluate(request);

  // Reference: the same mapping scored directly on a freshly built
  // problem. Bitwise equal — the service cache only shifts cost.
  const SweepCell cell{};
  const auto problem =
      make_problem(spec, cell, make_cell_network(spec, 0, 0));
  Evaluator evaluator(problem, options.batch.evaluator);
  const auto mapping =
      Mapping::from_assignment({0, 1, 2, 3, 4}, problem.tile_count());
  EXPECT_EQ(answer.fitness, evaluator.evaluate(mapping));
  const auto raw = evaluator.evaluate_raw(mapping);
  EXPECT_EQ(answer.snr_db, raw.worst_snr_db);
  EXPECT_EQ(answer.loss_db, raw.worst_loss_db);

  // The repeat evaluation is answered from the harvested memo bank.
  const auto repeat = broker.evaluate(request);
  EXPECT_EQ(repeat.fitness, answer.fitness);
  const auto snap = broker.metrics();
  EXPECT_EQ(snap.single_evaluations, 2u);
  EXPECT_GT(snap.evaluator_cache_hits, 0u);

  EvaluateRequest wrong = request;
  wrong.assignment = {0, 1};  // workload has 5 tasks
  EXPECT_THROW((void)broker.evaluate(wrong), Error);
}

// --- serve_client over real socketpairs -------------------------------------

/// Both ends of a framed AF_UNIX socketpair connection.
struct ConnectionPair {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
};

ConnectionPair make_connection_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw ExecError("socketpair failed");
  return {make_fd_connection(fds[1]), make_fd_connection(fds[0])};
}

/// Client-side handshake; fails the test on a mismatch.
void shake_hands(Connection& conn) {
  ASSERT_TRUE(conn.send(kServiceHello));
  const auto hello = conn.recv(30.0);
  ASSERT_EQ(hello.status, Connection::RecvStatus::Ok);
  EXPECT_EQ(parse_reply(hello.payload).kind, ServiceReply::Kind::Hello);
}

/// Drive one request to its terminal reply, collecting streamed cells
/// into grid order.
struct WireOutcome {
  std::vector<CellResult> cells;
  std::size_t ok = 0;
  std::size_t failed = 0;
  bool done = false;
  bool rejected = false;
  RejectKind kind = RejectKind::Internal;
  std::string reason;
};

WireOutcome run_request_over(Connection& conn, const ServiceRequest& request) {
  WireOutcome outcome;
  EXPECT_TRUE(conn.send(write_request(request)));
  for (;;) {
    const auto received = conn.recv(60.0);
    if (received.status != Connection::RecvStatus::Ok) {
      ADD_FAILURE() << "connection ended mid-request";
      return outcome;
    }
    const auto reply = parse_reply(received.payload);
    switch (reply.kind) {
      case ServiceReply::Kind::Accepted:
        outcome.cells.resize(reply.cells);
        break;
      case ServiceReply::Kind::Cell: {
        const auto index = reply.result.cell.index;
        if (index >= outcome.cells.size()) {
          ADD_FAILURE() << "cell index out of range";
          return outcome;
        }
        outcome.cells[index] = reply.result;
        break;
      }
      case ServiceReply::Kind::Done:
        outcome.done = true;
        outcome.ok = reply.ok;
        outcome.failed = reply.failed;
        return outcome;
      case ServiceReply::Kind::Rejected:
        outcome.rejected = true;
        outcome.kind = reply.reject;
        outcome.reason = reply.reason;
        return outcome;
      default:
        ADD_FAILURE() << "unexpected reply kind";
        return outcome;
    }
  }
}

TEST(ServeClient, ConcurrentMixedKindClientsAreBitIdenticalToInProcess) {
  const auto optimize = opt_spec();
  const auto sample = sample_spec();
  const auto optimize_reference = BatchEngine(BatchOptions{}).run(optimize);
  const auto sample_reference = BatchEngine(BatchOptions{}).run(sample);

  BrokerOptions options;
  options.batch.workers = 2;
  RequestBroker broker(options);

  // Two concurrent clients down one broker: one Optimize (submitted
  // twice — the repeat must come from the memo bank, bit-identically),
  // one Sample.
  auto pair_a = make_connection_pair();
  auto pair_b = make_connection_pair();
  std::thread server_a(
      [&] { (void)serve_client(*pair_a.server, broker); });
  std::thread server_b(
      [&] { (void)serve_client(*pair_b.server, broker); });

  std::thread client_a([&] {
    shake_hands(*pair_a.client);
    for (int round = 0; round < 2; ++round) {
      const auto outcome = run_request_over(
          *pair_a.client, make_request("opt" + std::to_string(round),
                                       optimize));
      ASSERT_TRUE(outcome.done);
      EXPECT_EQ(outcome.ok, optimize_reference.size());
      ASSERT_EQ(outcome.cells.size(), optimize_reference.size());
      for (std::size_t i = 0; i < outcome.cells.size(); ++i)
        expect_identical_cell(outcome.cells[i], optimize_reference[i],
                              optimize.task_kind);
    }
    (void)pair_a.client->send(kServiceQuit);
  });
  std::thread client_b([&] {
    shake_hands(*pair_b.client);
    const auto outcome =
        run_request_over(*pair_b.client, make_request("smp", sample));
    ASSERT_TRUE(outcome.done);
    ASSERT_EQ(outcome.cells.size(), sample_reference.size());
    for (std::size_t i = 0; i < outcome.cells.size(); ++i)
      expect_identical_cell(outcome.cells[i], sample_reference[i],
                            sample.task_kind);
    // The same connection also serves stats and single evaluations.
    ASSERT_TRUE(pair_b.client->send(kServiceStats));
    const auto stats_frame = pair_b.client->recv(30.0);
    ASSERT_EQ(stats_frame.status, Connection::RecvStatus::Ok);
    const auto stats = parse_reply(stats_frame.payload);
    EXPECT_EQ(stats.kind, ServiceReply::Kind::Stats);
    EXPECT_NE(stats.body.find("uptime_seconds"), std::string::npos);
    EXPECT_NE(stats.body.find("requests_accepted"), std::string::npos);

    EvaluateRequest probe;
    probe.id = "probe";
    probe.spec = optimize;
    probe.assignment = {0, 1, 2, 3, 4};
    ASSERT_TRUE(pair_b.client->send(write_evaluate(probe)));
    const auto eval_frame = pair_b.client->recv(30.0);
    ASSERT_EQ(eval_frame.status, Connection::RecvStatus::Ok);
    EXPECT_EQ(parse_reply(eval_frame.payload).kind,
              ServiceReply::Kind::Evaluation);
    (void)pair_b.client->send(kServiceQuit);
  });

  client_a.join();
  client_b.join();
  server_a.join();
  server_b.join();

  const auto snap = broker.metrics();
  EXPECT_EQ(snap.connections, 2u);
  EXPECT_EQ(snap.requests_accepted, 3u);
  EXPECT_EQ(snap.requests_completed, 3u);
  EXPECT_EQ(snap.stats_requests, 1u);
  EXPECT_EQ(snap.single_evaluations, 1u);
  // The repeated Optimize request reused the cross-request memo bank.
  EXPECT_GT(snap.evaluator_cache_hits, 0u);
  EXPECT_GT(snap.problem_cache_hits, 0u);
}

TEST(ServeClient, VanishedClientCancelsItsJobWithoutHanging) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.start_paused = true;  // the job is still queued when we vanish
  RequestBroker broker(options);

  auto pair = make_connection_pair();
  std::thread server([&] { (void)serve_client(*pair.server, broker); });

  {
    auto client = std::move(pair.client);
    shake_hands(*client);
    ASSERT_TRUE(client->send(write_request(make_request("gone", opt_spec()))));
    const auto accepted = client->recv(30.0);
    ASSERT_EQ(accepted.status, Connection::RecvStatus::Ok);
    EXPECT_EQ(parse_reply(accepted.payload).kind,
              ServiceReply::Kind::Accepted);
    client->close();  // the client vanishes with its job still queued
  }

  // Give the handler a moment to observe the hangup and latch its
  // writer shut, so the broker's liveness probe sees a dead client
  // before the queue unfreezes.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  broker.resume();
  server.join();  // must not hang: the alive() probe skips the job

  const auto snap = broker.metrics();
  EXPECT_EQ(snap.requests_canceled, 1u);
  EXPECT_EQ(snap.requests_completed, 0u);
  EXPECT_EQ(snap.cells_ok, 0u);  // canceled before any cell ran
}

TEST(ServeClient, MalformedAndUnknownFramesGetStructuredAnswers) {
  BrokerOptions options;
  options.batch.workers = 1;
  RequestBroker broker(options);

  auto pair = make_connection_pair();
  // Like ServiceServer's handler threads: closing the connection after
  // serve_client returns is the caller's job.
  std::thread server([&] {
    (void)serve_client(*pair.server, broker);
    pair.server->close();
  });
  shake_hands(*pair.client);

  // A request whose header parses but whose body is junk: a structured
  // malformed rejection naming the salvaged id, connection stays up.
  ASSERT_TRUE(pair.client->send(
      "request broken deadline 0 max_cells 0\nnot a spec at all"));
  const auto rejected = pair.client->recv(30.0);
  ASSERT_EQ(rejected.status, Connection::RecvStatus::Ok);
  const auto reply = parse_reply(rejected.payload);
  EXPECT_EQ(reply.kind, ServiceReply::Kind::Rejected);
  EXPECT_EQ(reply.id, "broken");
  EXPECT_EQ(reply.reject, RejectKind::Malformed);

  // An unknown frame kind: an error reply, then the connection ends.
  ASSERT_TRUE(pair.client->send("telemetry subscribe"));
  const auto error = pair.client->recv(30.0);
  ASSERT_EQ(error.status, Connection::RecvStatus::Ok);
  EXPECT_EQ(parse_reply(error.payload).kind, ServiceReply::Kind::Error);
  const auto closed = pair.client->recv(30.0);
  EXPECT_EQ(closed.status, Connection::RecvStatus::Closed);

  server.join();
  EXPECT_EQ(broker.metrics().requests_malformed, 1u);
}

TEST(ServeClient, HandshakeMismatchIsAnsweredAndDropped) {
  BrokerOptions options;
  options.batch.workers = 1;
  RequestBroker broker(options);

  auto pair = make_connection_pair();
  std::thread server([&] { (void)serve_client(*pair.server, broker); });
  ASSERT_TRUE(pair.client->send("hello some-other-protocol v9"));
  const auto reply = pair.client->recv(30.0);
  ASSERT_EQ(reply.status, Connection::RecvStatus::Ok);
  EXPECT_EQ(parse_reply(reply.payload).kind, ServiceReply::Kind::Error);
  server.join();
  EXPECT_EQ(broker.metrics().connections, 0u);
}

// --- the TCP daemon surface (ServiceServer) ---------------------------------

TEST(ServiceServer, ServesARealTcpClientOnAnEphemeralPort) {
  BrokerOptions options;
  options.batch.workers = 2;
  ServiceServer server(0, options);
  ASSERT_NE(server.port(), 0);
  std::thread accept_thread([&] { server.run(/*max_connections=*/1); });

  const auto spec = opt_spec();
  const auto reference = BatchEngine(BatchOptions{}).run(spec);
  TcpTransport transport(10.0);
  auto conn =
      transport.connect("127.0.0.1:" + std::to_string(server.port()));
  shake_hands(*conn);
  const auto outcome = run_request_over(*conn, make_request("tcp", spec));
  ASSERT_TRUE(outcome.done);
  ASSERT_EQ(outcome.cells.size(), reference.size());
  for (std::size_t i = 0; i < outcome.cells.size(); ++i)
    expect_identical_cell(outcome.cells[i], reference[i], spec.task_kind);
  (void)conn->send(kServiceQuit);
  conn->close();
  accept_thread.join();
  EXPECT_EQ(server.broker().metrics().requests_completed, 1u);
}

// --- FairScheduler: lanes + deficit round robin -----------------------------

TEST(FairScheduler, InteractiveLaneAlwaysDrainsFirst) {
  FairScheduler<std::string> sched(32);
  sched.push(ServiceLane::Bulk, "a", 8, "bulk-1");
  sched.push(ServiceLane::Bulk, "a", 8, "bulk-2");
  sched.push(ServiceLane::Interactive, "b", 1, "fast-1");
  sched.push(ServiceLane::Interactive, "c", 1, "fast-2");
  EXPECT_EQ(sched.size(), 4u);
  EXPECT_EQ(sched.size(ServiceLane::Interactive), 2u);
  EXPECT_EQ(*sched.pop(), "fast-1");
  EXPECT_EQ(*sched.pop(), "fast-2");
  EXPECT_EQ(*sched.pop(), "bulk-1");
  // A late interactive arrival still jumps the queued bulk work.
  sched.push(ServiceLane::Interactive, "b", 1, "fast-3");
  EXPECT_EQ(*sched.pop(), "fast-3");
  EXPECT_EQ(*sched.pop(), "bulk-2");
  EXPECT_FALSE(sched.pop().has_value());
  EXPECT_TRUE(sched.empty());
}

TEST(FairScheduler, LightClientIsServedWithinTheFirstRound) {
  // The satellite scenario: heavy client a queues 8 jobs of cost 4,
  // light client b queues 1. With quantum 16, a's burst is cut after
  // exactly quantum/cost = 4 jobs and b runs — within the first round,
  // not after a's whole backlog.
  FairScheduler<std::string> sched(16);
  for (int i = 0; i < 8; ++i)
    sched.push(ServiceLane::Bulk, "a", 4, "a" + std::to_string(i));
  sched.push(ServiceLane::Bulk, "b", 4, "b0");
  std::vector<std::string> order;
  while (auto job = sched.pop()) order.push_back(*job);
  ASSERT_EQ(order.size(), 9u);
  const std::vector<std::string> want{"a0", "a1", "a2", "a3", "b0",
                                      "a4", "a5", "a6", "a7"};
  EXPECT_EQ(order, want);
}

TEST(FairScheduler, ExpensiveJobAccumulatesDeficitAcrossRounds) {
  // a's front job costs 10 with quantum 4: unaffordable for two rounds,
  // served on the third visit (deficit 4 -> 8 -> 12), while b's cheap
  // jobs keep flowing — backlog never starves, big jobs still run.
  FairScheduler<std::string> sched(4);
  sched.push(ServiceLane::Bulk, "a", 10, "a-big");
  for (int i = 0; i < 6; ++i)
    sched.push(ServiceLane::Bulk, "b", 2, "b" + std::to_string(i));
  std::vector<std::string> order;
  while (auto job = sched.pop()) order.push_back(*job);
  const std::vector<std::string> want{"b0", "b1", "b2", "b3", "a-big",
                                      "b4", "b5"};
  EXPECT_EQ(order, want);
}

TEST(FairScheduler, EmptiedClientForfeitsItsDeficit) {
  FairScheduler<std::string> sched(10);
  sched.push(ServiceLane::Bulk, "a", 1, "a0");
  EXPECT_EQ(*sched.pop(), "a0");  // leaves 9 deficit on the table
  // Re-joining starts from zero: a cost-11 job needs two fresh visits
  // (10, then 20), not the forfeited credit from the earlier burst.
  sched.push(ServiceLane::Bulk, "a", 11, "a-big");
  sched.push(ServiceLane::Bulk, "b", 1, "b0");
  EXPECT_EQ(*sched.pop(), "b0");
  EXPECT_EQ(*sched.pop(), "a-big");
  EXPECT_EQ(sched.client_depth("a"), 0u);
}

TEST(FairScheduler, DrainReturnsEverythingInteractiveFirst) {
  FairScheduler<int> sched(8);
  sched.push(ServiceLane::Bulk, "a", 4, 1);
  sched.push(ServiceLane::Interactive, "a", 1, 2);
  sched.push(ServiceLane::Bulk, "b", 4, 3);
  sched.push(ServiceLane::Interactive, "b", 1, 4);
  EXPECT_EQ(sched.client_depth("a"), 2u);
  const auto all = sched.drain();
  ASSERT_EQ(all.size(), 4u);
  // Interactive lane first; cross-client order within a lane is ring
  // order, which drain does not pin.
  EXPECT_TRUE((all[0] == 2 && all[1] == 4) || (all[0] == 4 && all[1] == 2));
  EXPECT_TRUE((all[2] == 1 && all[3] == 3) || (all[2] == 3 && all[3] == 1));
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.client_depth("a"), 0u);
  EXPECT_FALSE(sched.pop().has_value());
}

// --- broker scheduling: fairness, lanes, caps, concurrency ------------------

TEST(RequestBroker, PausedBrokerServesLightClientWithinFirstDrrRound) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.request_concurrency = 1;  // completion order == pop order
  options.interactive_cell_threshold = 0;  // everything rides bulk: DRR only
  options.drr_quantum_cells = 16;
  options.max_queue_depth = 16;
  options.max_outstanding_cells = 0;
  options.start_paused = true;  // admission order is deterministic
  RequestBroker broker(options);

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  std::vector<std::unique_ptr<Collected>> jobs;
  const auto submit = [&](const std::string& id, const std::string& client) {
    auto collected = std::make_unique<Collected>();
    auto events = collected->events();
    const auto base_done = events.on_done;
    events.on_done = [&, id, base_done](std::size_t ok, std::size_t failed) {
      {
        const std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(id);
      }
      base_done(ok, failed);
    };
    ASSERT_TRUE(broker
                    .submit(make_request(id, opt_spec()), std::move(events),
                            client)
                    .accepted);
    jobs.push_back(std::move(collected));
  };

  // Heavy client a queues 8 four-cell sweeps, light client b one.
  for (int i = 0; i < 8; ++i) submit("a" + std::to_string(i), "a");
  submit("b0", "b");
  broker.resume();
  for (auto& job : jobs) job->wait();

  // Quantum 16 over cost-4 jobs: a0..a3, then b0 — the light client is
  // served within the first DRR round, not behind a's whole backlog.
  ASSERT_EQ(completion_order.size(), 9u);
  const std::vector<std::string> want{"a0", "a1", "a2", "a3", "b0",
                                      "a4", "a5", "a6", "a7"};
  EXPECT_EQ(completion_order, want);
}

TEST(RequestBroker, ConcurrencyOnePreservesAnonymousSubmissionOrder) {
  // The pre-pool pin: one worker and one (anonymous) sub-queue is plain
  // FIFO — admission order is execution order, exactly the old
  // single-thread run_loop.
  BrokerOptions options;
  options.batch.workers = 1;
  options.request_concurrency = 1;
  options.interactive_cell_threshold = 0;
  options.start_paused = true;
  RequestBroker broker(options);

  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  std::vector<std::unique_ptr<Collected>> jobs;
  for (const auto* id : {"first", "second", "third"}) {
    auto collected = std::make_unique<Collected>();
    auto events = collected->events();
    const auto base_done = events.on_done;
    const std::string name = id;
    events.on_done = [&, name, base_done](std::size_t ok,
                                          std::size_t failed) {
      {
        const std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(name);
      }
      base_done(ok, failed);
    };
    ASSERT_TRUE(
        broker.submit(make_request(name, opt_spec()), std::move(events))
            .accepted);
    jobs.push_back(std::move(collected));
  }
  broker.resume();
  for (auto& job : jobs) job->wait();
  EXPECT_EQ(completion_order,
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(RequestBroker, LaneRoutingByThresholdAndExplicitPriority) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.request_concurrency = 1;
  options.interactive_cell_threshold = 4;  // opt_spec's 4 cells qualify
  options.max_outstanding_cells = 0;
  options.start_paused = true;
  RequestBroker broker(options);

  // An 8-cell sweep routes bulk by size.
  auto big = opt_spec();
  big.add_seed_range(11, 2);  // 2 optimizers x 1 budget x 4 seeds = 8
  std::mutex order_mutex;
  std::vector<std::string> completion_order;
  std::vector<std::unique_ptr<Collected>> jobs;
  const auto submit = [&](ServiceRequest request) {
    auto collected = std::make_unique<Collected>();
    auto events = collected->events();
    const auto base_done = events.on_done;
    const std::string id = request.id;
    events.on_done = [&, id, base_done](std::size_t ok, std::size_t failed) {
      {
        const std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(id);
      }
      base_done(ok, failed);
    };
    ASSERT_TRUE(broker.submit(std::move(request), std::move(events), "c")
                    .accepted);
    jobs.push_back(std::move(collected));
  };

  submit(make_request("bulk-by-size", big));
  auto pinned = make_request("bulk-by-priority", opt_spec());
  pinned.priority = RequestPriority::Bulk;  // small grid, explicit lane
  submit(std::move(pinned));
  submit(make_request("fast-by-size", opt_spec()));

  {
    const auto snap = broker.metrics();
    EXPECT_EQ(snap.queue_depth, 3u);
    EXPECT_EQ(snap.queue_depth_interactive, 1u);
    EXPECT_EQ(snap.queue_depth_bulk, 2u);
    EXPECT_EQ(snap.requests_interactive, 1u);
    EXPECT_EQ(snap.requests_bulk, 2u);
  }

  broker.resume();
  for (auto& job : jobs) job->wait();
  // The interactive request overtook both queued bulk requests even
  // though it was submitted last.
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], "fast-by-size");
  const auto snap = broker.metrics();
  EXPECT_EQ(snap.interactive_overtakes, 1u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_GE(snap.wait_bulk_p99_seconds, 0.0);
}

TEST(RequestBroker, PerClientCapShedsTheHogAndAdmitsOthers) {
  BrokerOptions options;
  options.batch.workers = 1;
  options.request_concurrency = 1;
  options.max_queue_depth = 16;
  options.max_queue_per_client = 2;
  options.max_outstanding_cells = 0;
  options.start_paused = true;
  RequestBroker broker(options);

  Collected h0, h1, h2, other;
  ASSERT_TRUE(broker.submit(make_request("h0", opt_spec()), h0.events(),
                            "hog")
                  .accepted);
  ASSERT_TRUE(broker.submit(make_request("h1", opt_spec()), h1.events(),
                            "hog")
                  .accepted);
  const auto shed = broker.submit(make_request("h2", opt_spec()),
                                  h2.events(), "hog");
  EXPECT_FALSE(shed.accepted);
  EXPECT_EQ(shed.kind, RejectKind::PerClientLimit);
  EXPECT_NE(shed.reason.find("per-client cap"), std::string::npos);
  // The cap is per client, not global: another client still gets in.
  ASSERT_TRUE(broker.submit(make_request("o0", opt_spec()), other.events(),
                            "polite")
                  .accepted);

  const auto snap = broker.metrics();
  EXPECT_EQ(snap.shed_per_client, 1u);
  EXPECT_EQ(snap.requests_accepted, 3u);
  EXPECT_EQ(snap.queue_depth, 3u);

  broker.resume();
  h0.wait();
  h1.wait();
  other.wait();
}

TEST(RequestBroker, InFlightCellsAreAPerJobSumUnderConcurrency) {
  // The satellite regression: with two requests executing, the
  // in-flight gauge must be the *sum* of both jobs' unfinished cells
  // (the old scalar was overwritten by whichever job started last).
  BrokerOptions options;
  options.batch.workers = 1;  // cells run serially inside each request
  options.request_concurrency = 2;
  options.max_outstanding_cells = 0;
  options.start_paused = true;
  RequestBroker broker(options);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  std::size_t cells_entered = 0;
  bool release = false;
  std::promise<void> done_a, done_b;
  const auto events_for = [&](std::promise<void>& done) {
    JobEvents events;
    events.on_cell = [&](const CellResult&) {
      std::unique_lock<std::mutex> lock(gate_mutex);
      ++cells_entered;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release; });
      return true;
    };
    events.on_done = [&done](std::size_t, std::size_t) { done.set_value(); };
    events.on_reject = [&done](RejectKind, const std::string&) {
      done.set_value();
    };
    return events;
  };
  ASSERT_TRUE(broker.submit(make_request("a", opt_spec()),
                            events_for(done_a))
                  .accepted);
  ASSERT_TRUE(broker.submit(make_request("b", opt_spec()),
                            events_for(done_b))
                  .accepted);
  broker.resume();
  {
    // Both workers are now blocked streaming their first cell: two
    // 4-cell jobs are executing and no cell has finished yet.
    std::unique_lock<std::mutex> lock(gate_mutex);
    ASSERT_TRUE(gate_cv.wait_for(lock, kWaitLimit,
                                 [&] { return cells_entered >= 2; }));
  }
  {
    const auto snap = broker.metrics();
    EXPECT_EQ(snap.in_flight_requests, 2u);
    EXPECT_EQ(snap.in_flight_cells, 8u);  // 4 + 4, not last-writer-wins
    EXPECT_EQ(snap.queue_depth, 0u);
  }
  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_EQ(done_a.get_future().wait_for(kWaitLimit),
            std::future_status::ready);
  ASSERT_EQ(done_b.get_future().wait_for(kWaitLimit),
            std::future_status::ready);
  // on_done fires from inside execute(); the worker releases its
  // in-flight accounting just after, so poll briefly for the settle.
  const auto deadline = std::chrono::steady_clock::now() + kWaitLimit;
  MetricsSnapshot snap = broker.metrics();
  while (snap.in_flight_requests != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
    snap = broker.metrics();
  }
  EXPECT_EQ(snap.in_flight_requests, 0u);
  EXPECT_EQ(snap.in_flight_cells, 0u);
  EXPECT_EQ(snap.requests_completed, 2u);
}

TEST(RequestBroker, ThreeConcurrentBusyClientsStayBitIdenticalToSolo) {
  const auto optimize = opt_spec();
  const auto sample = sample_spec();
  const auto optimize_reference = BatchEngine(BatchOptions{}).run(optimize);
  const auto sample_reference = BatchEngine(BatchOptions{}).run(sample);

  BrokerOptions options;
  options.batch.workers = 1;
  options.request_concurrency = 3;  // three requests genuinely in flight
  options.max_outstanding_cells = 0;
  RequestBroker broker(options);
  ASSERT_EQ(broker.worker_count(), 3u);

  // Three clients hammer the broker at once: two Optimize streams (the
  // second also exercises the shared memo bank) and one Sample stream.
  // Every result must match the solo in-process run bit for bit — the
  // shared problem cache and memo shift cost only, never results.
  struct ClientRun {
    std::string client;
    const SweepSpec* spec;
    const std::vector<CellResult>* reference;
    Collected collected;
  };
  std::vector<std::unique_ptr<ClientRun>> runs;
  runs.push_back(std::unique_ptr<ClientRun>(
      new ClientRun{"alice", &optimize, &optimize_reference, {}}));
  runs.push_back(std::unique_ptr<ClientRun>(
      new ClientRun{"bob", &optimize, &optimize_reference, {}}));
  runs.push_back(std::unique_ptr<ClientRun>(
      new ClientRun{"carol", &sample, &sample_reference, {}}));
  for (auto& run : runs)
    ASSERT_TRUE(broker
                    .submit(make_request(run->client, *run->spec),
                            run->collected.events(), run->client)
                    .accepted);
  for (auto& run : runs) {
    run->collected.wait();
    ASSERT_TRUE(run->collected.done) << run->client;
    ASSERT_EQ(run->collected.cells.size(), run->reference->size())
        << run->client;
    std::vector<CellResult> ordered(run->reference->size());
    for (auto& cell : run->collected.cells)
      ordered[cell.cell.index] = std::move(cell);
    for (std::size_t i = 0; i < ordered.size(); ++i)
      expect_identical_cell(ordered[i], (*run->reference)[i],
                            run->spec->task_kind);
  }
  // The in-flight gauges settle just after each on_done (see the
  // accounting test above): poll briefly.
  const auto deadline = std::chrono::steady_clock::now() + kWaitLimit;
  MetricsSnapshot snap = broker.metrics();
  while (snap.in_flight_requests != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
    snap = broker.metrics();
  }
  EXPECT_EQ(snap.requests_completed, 3u);
  EXPECT_EQ(snap.in_flight_cells, 0u);
  EXPECT_EQ(snap.in_flight_requests, 0u);
}

}  // namespace
}  // namespace phonoc
