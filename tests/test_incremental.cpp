// Property tests of the incremental (delta) evaluation layer: across
// random CGs, mesh/ring/torus topologies and all four objectives, long
// random propose/commit/revert swap sequences must stay bit-identical
// (tolerance 0) to full `evaluate_mapping` re-evaluation — fitness and
// per-edge metrics alike. Also covers the Evaluator's transactional
// move API, the incremental-vs-whole-mapping equivalence of complete
// optimizer runs, and the whole-mapping memo's counting contract
// (cache hits must never change the evaluation counts budgets observe).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/evaluator.hpp"
#include "core/experiment.hpp"
#include "mapping/mapping.hpp"
#include "mapping/objective.hpp"
#include "model/incremental.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "routing/table_routing.hpp"
#include "topology/ring.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

std::shared_ptr<const NetworkModel> make_test_network(
    const std::string& topology) {
  if (topology == "ring") {
    auto router = std::make_shared<const RouterModel>(
        make_router_netlist("crux"), PhysicalParameters::paper_defaults());
    const auto topo = build_ring(RingOptions{12, 2.5});
    auto routing = std::make_shared<const TableRouting>(
        TableRouting::shortest_paths(topo));
    return std::make_shared<const NetworkModel>(topo, std::move(router),
                                                std::move(routing),
                                                NetworkModelOptions{});
  }
  const auto kind =
      topology == "torus" ? TopologyKind::Torus : TopologyKind::Mesh;
  return make_network(kind, 4, "crux");
}

std::shared_ptr<const Objective> make_test_objective(const std::string& name,
                                                     const CommGraph& cg) {
  if (name == "worst_loss") return std::make_shared<WorstLossObjective>();
  if (name == "worst_snr") return std::make_shared<WorstSnrObjective>();
  if (name == "composite")
    return std::make_shared<CompositeObjective>(0.6, 0.4);
  return std::make_shared<BandwidthWeightedLossObjective>(cg);
}

MappingProblem make_test_problem(const std::string& topology,
                                 const std::string& objective,
                                 std::uint64_t cg_seed) {
  auto cg = random_cg({.tasks = 10,
                       .avg_out_degree = 1.8,
                       .min_bandwidth = 8,
                       .max_bandwidth = 256,
                       .seed = cg_seed,
                       .acyclic = false});
  auto obj = make_test_objective(objective, cg);
  return MappingProblem(std::move(cg), make_test_network(topology),
                        std::move(obj));
}

/// Bitwise comparison of the kernel-maintained state against a fresh
/// full evaluation of the same assignment. Zero tolerance throughout.
void expect_matches_full(const MappingProblem& problem,
                         const IncrementalEvaluation& kernel,
                         const Mapping& mapping, const std::string& where) {
  const auto full = evaluate_mapping(problem.network(), problem.cg(),
                                     mapping.assignment(), /*detailed=*/true);
  const auto delta = kernel.result(/*detailed=*/true);
  ASSERT_EQ(delta.worst_loss_db, full.worst_loss_db) << where;
  ASSERT_EQ(delta.worst_snr_db, full.worst_snr_db) << where;
  ASSERT_EQ(problem.objective().fitness(delta),
            problem.objective().fitness(full))
      << where;
  ASSERT_EQ(delta.edges.size(), full.edges.size()) << where;
  for (std::size_t e = 0; e < full.edges.size(); ++e) {
    ASSERT_EQ(delta.edges[e].edge, full.edges[e].edge) << where;
    ASSERT_EQ(delta.edges[e].src_tile, full.edges[e].src_tile) << where;
    ASSERT_EQ(delta.edges[e].dst_tile, full.edges[e].dst_tile) << where;
    ASSERT_EQ(delta.edges[e].loss_db, full.edges[e].loss_db) << where;
    ASSERT_EQ(delta.edges[e].signal_gain, full.edges[e].signal_gain) << where;
    ASSERT_EQ(delta.edges[e].noise_gain, full.edges[e].noise_gain) << where;
    ASSERT_EQ(delta.edges[e].snr_db, full.edges[e].snr_db) << where;
  }
}

struct SweepConfig {
  const char* topology;
  const char* objective;
};

std::string PrintConfig(const ::testing::TestParamInfo<SweepConfig>& info) {
  return std::string(info.param.topology) + "_" + info.param.objective;
}

class DeltaEqualsFullSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(DeltaEqualsFullSweep, LongRandomSwapSequenceIsBitIdentical) {
  const auto [topology, objective] = GetParam();
  const auto problem = make_test_problem(topology, objective, 77);
  const auto tiles = problem.tile_count();

  IncrementalEvaluation kernel(problem.network(), problem.cg());
  EXPECT_FALSE(kernel.has_state());
  Rng rng(std::hash<std::string>{}(std::string(topology) + objective));
  Mapping current = Mapping::random(problem.task_count(), tiles, rng);
  kernel.reset(current.assignment());
  ASSERT_NO_FATAL_FAILURE(
      expect_matches_full(problem, kernel, current, "after reset"));

  int commits = 0;
  int reverts = 0;
  for (int step = 0; step < 1200; ++step) {
    const auto where = "step " + std::to_string(step);
    if (step % 250 == 249) {
      // Arbitrary re-assignment: the full-rebuild fallback.
      current = Mapping::random(problem.task_count(), tiles, rng);
      kernel.reset(current.assignment());
      ASSERT_NO_FATAL_FAILURE(
          expect_matches_full(problem, kernel, current, where + " rebase"));
      continue;
    }
    const auto a = static_cast<TileId>(rng.next_below(tiles));
    const auto b = static_cast<TileId>(rng.next_below(tiles));
    current.swap_tiles(a, b);
    kernel.propose_swap(a, b);
    ASSERT_TRUE(kernel.pending());
    ASSERT_NO_FATAL_FAILURE(
        expect_matches_full(problem, kernel, current, where + " propose"));
    if (rng.next_bool(0.6)) {
      kernel.commit();
      ++commits;
    } else {
      // Revert-after-propose round trip must restore the state bitwise.
      kernel.revert();
      current.swap_tiles(a, b);
      ++reverts;
      ASSERT_NO_FATAL_FAILURE(
          expect_matches_full(problem, kernel, current, where + " revert"));
    }
  }
  EXPECT_GT(commits, 100);
  EXPECT_GT(reverts, 100);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeltaEqualsFullSweep,
    ::testing::Values(SweepConfig{"mesh", "worst_loss"},
                      SweepConfig{"mesh", "worst_snr"},
                      SweepConfig{"mesh", "composite"},
                      SweepConfig{"mesh", "bandwidth_weighted_loss"},
                      SweepConfig{"ring", "worst_loss"},
                      SweepConfig{"ring", "worst_snr"},
                      SweepConfig{"ring", "composite"},
                      SweepConfig{"ring", "bandwidth_weighted_loss"},
                      SweepConfig{"torus", "worst_loss"},
                      SweepConfig{"torus", "worst_snr"},
                      SweepConfig{"torus", "composite"},
                      SweepConfig{"torus", "bandwidth_weighted_loss"}),
    PrintConfig);

// --- kernel protocol guards -------------------------------------------------

TEST(IncrementalKernel, ProtocolMisuseThrows) {
  const auto problem = make_test_problem("mesh", "worst_snr", 3);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  EXPECT_THROW(kernel.propose_swap(0, 1), InvalidArgument);  // no base
  EXPECT_THROW(kernel.commit(), InvalidArgument);
  EXPECT_THROW(kernel.revert(), InvalidArgument);
  Rng rng(5);
  const auto mapping = Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng);
  kernel.reset(mapping.assignment());
  kernel.propose_swap(0, 1);
  EXPECT_THROW(kernel.propose_swap(2, 3), InvalidArgument);  // pending
  EXPECT_THROW(kernel.reset(mapping.assignment()), InvalidArgument);
  kernel.revert();
  EXPECT_THROW(kernel.commit(), InvalidArgument);  // nothing pending
}

TEST(IncrementalKernel, EmptyTileAndIdentitySwapsAreExactNoOps) {
  // 10 tasks on 16 tiles: empty tiles exist. Swapping two empty tiles
  // or a tile with itself must leave every metric bitwise unchanged.
  const auto problem = make_test_problem("mesh", "worst_snr", 9);
  IncrementalEvaluation kernel(problem.network(), problem.cg());
  Rng rng(11);
  Mapping current = Mapping::random(problem.task_count(),
                                    problem.tile_count(), rng);
  kernel.reset(current.assignment());
  TileId empty_a = 0;
  TileId empty_b = 0;
  for (TileId t = 0; t < problem.tile_count(); ++t)
    if (current.task_at(t) < 0) {
      empty_a = empty_b;
      empty_b = t;
    }
  ASSERT_NE(empty_a, empty_b);
  const auto before = kernel.result(true);
  kernel.propose_swap(empty_a, empty_b);
  EXPECT_EQ(kernel.result(true).worst_snr_db, before.worst_snr_db);
  kernel.commit();
  kernel.propose_swap(3, 3);
  EXPECT_EQ(kernel.result(true).worst_snr_db, before.worst_snr_db);
  kernel.revert();
  ASSERT_NO_FATAL_FAILURE(
      expect_matches_full(problem, kernel, current, "after no-ops"));
}

// --- Evaluator move API -----------------------------------------------------

TEST(EvaluatorMoves, ProposalCountsOneLogicalEvaluation) {
  const auto problem = make_test_problem("mesh", "worst_snr", 21);
  Evaluator evaluator(problem);
  ASSERT_TRUE(evaluator.supports_moves());
  Rng rng(2);
  Mapping current = Mapping::random(problem.task_count(),
                                    problem.tile_count(), rng);
  const double base = evaluator.evaluate(current);
  EXPECT_EQ(evaluator.evaluation_count(), 1u);

  current.swap_tiles(1, 2);
  const double proposed = evaluator.propose_swap(current, 1, 2);
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
  EXPECT_EQ(proposed,
            problem.objective().fitness(evaluator.evaluate_raw(current)));
  evaluator.revert_move();
  current.swap_tiles(1, 2);
  // Back at the base: a re-proposal of any swap still agrees with the
  // whole-mapping path, and the base fitness is unchanged.
  EXPECT_EQ(evaluator.evaluate(current), base);
  EXPECT_EQ(evaluator.evaluation_count(), 3u);
}

TEST(EvaluatorMoves, IncrementalOffFallsBackBitIdentically) {
  const auto problem = make_test_problem("torus", "composite", 23);
  Evaluator incremental(problem, {.cache_capacity = 0, .incremental = true});
  Evaluator fallback(problem, {.cache_capacity = 0, .incremental = false});
  EXPECT_FALSE(fallback.supports_moves());
  Rng rng(17);
  Mapping a = Mapping::random(problem.task_count(), problem.tile_count(),
                              rng);
  Mapping b = a;
  EXPECT_EQ(incremental.evaluate(a), fallback.evaluate(b));
  for (int step = 0; step < 300; ++step) {
    const auto x = static_cast<TileId>(rng.next_below(problem.tile_count()));
    const auto y = static_cast<TileId>(rng.next_below(problem.tile_count()));
    a.swap_tiles(x, y);
    b.swap_tiles(x, y);
    const double fi = incremental.propose_swap(a, x, y);
    const double ff = fallback.propose_swap(b, x, y);
    ASSERT_EQ(fi, ff) << "step " << step;
    if (step % 3 == 0) {
      incremental.commit_move();
      fallback.commit_move();
    } else {
      incremental.revert_move();
      fallback.revert_move();
      a.swap_tiles(x, y);
      b.swap_tiles(x, y);
    }
  }
  EXPECT_EQ(incremental.evaluation_count(), fallback.evaluation_count());
}

// --- complete optimizer runs: incremental on/off, cache on/off --------------

void expect_identical_runs(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_TRUE(a.search.best == b.search.best);
  EXPECT_EQ(a.search.best_fitness, b.search.best_fitness);  // bitwise
  EXPECT_EQ(a.search.evaluations, b.search.evaluations);
  EXPECT_EQ(a.search.iterations, b.search.iterations);
  ASSERT_EQ(a.search.trace.size(), b.search.trace.size());
  for (std::size_t i = 0; i < a.search.trace.size(); ++i) {
    EXPECT_EQ(a.search.trace[i].evaluation, b.search.trace[i].evaluation);
    EXPECT_EQ(a.search.trace[i].fitness, b.search.trace[i].fitness);
  }
  EXPECT_EQ(a.best_evaluation.worst_loss_db, b.best_evaluation.worst_loss_db);
  EXPECT_EQ(a.best_evaluation.worst_snr_db, b.best_evaluation.worst_snr_db);
}

TEST(EvaluatorEquivalence, OptimizerTrajectoriesMatchWholeMappingPath) {
  // The load-bearing end-to-end property: for every move-based
  // optimizer, the incremental path (and the memo) must reproduce the
  // whole-mapping sequential protocol bit for bit.
  ExperimentSpec spec;
  spec.benchmark = "mpeg4";
  const auto problem = make_experiment(spec);
  OptimizerBudget budget;
  budget.max_evaluations = 1500;
  const Engine reference(problem, {.cache_capacity = 0,
                                   .incremental = false});
  const Engine delta(problem, {.cache_capacity = 0, .incremental = true});
  const Engine delta_cached(problem,
                            {.cache_capacity = 512, .incremental = true});
  for (const auto* name : {"sa", "tabu", "rpbla", "rs", "ga"}) {
    const auto want = reference.run(name, budget, 42);
    expect_identical_runs(delta.run(name, budget, 42), want);
    expect_identical_runs(delta_cached.run(name, budget, 42), want);
  }
}

// --- memoization counting contract ------------------------------------------

TEST(EvaluatorMemo, CacheHitsDoNotChangeLogicalCounts) {
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator evaluator(problem, {.cache_capacity = 64, .incremental = true});
  Rng rng(4);
  const auto mapping = Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng);
  const double first = evaluator.evaluate(mapping);
  EXPECT_EQ(evaluator.evaluation_count(), 1u);
  EXPECT_EQ(evaluator.physical_evaluation_count(), 1u);
  EXPECT_EQ(evaluator.cache_hit_count(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(evaluator.evaluate(mapping), first);
  // Logical counts (what budgets observe) advance on every call; the
  // physical evaluation ran exactly once.
  EXPECT_EQ(evaluator.evaluation_count(), 6u);
  EXPECT_EQ(evaluator.physical_evaluation_count(), 1u);
  EXPECT_EQ(evaluator.cache_hit_count(), 5u);
}

TEST(EvaluatorMemo, ZeroCapacityDisablesTheCache) {
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator evaluator(problem, {.cache_capacity = 0, .incremental = true});
  Rng rng(4);
  const auto mapping = Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng);
  const double first = evaluator.evaluate(mapping);
  EXPECT_EQ(evaluator.evaluate(mapping), first);
  EXPECT_EQ(evaluator.evaluation_count(), 2u);
  EXPECT_EQ(evaluator.physical_evaluation_count(), 2u);
  EXPECT_EQ(evaluator.cache_hit_count(), 0u);
}

TEST(EvaluatorMemo, DuplicateHeavySamplingKeepsBudgetSemantics) {
  // 4 tasks on 4 tiles: only 24 distinct mappings, so RS re-samples
  // duplicates constantly. The run must still report exactly the
  // budgeted number of evaluations while the memo absorbs the repeats.
  auto cg = pipeline_cg(4);
  auto network = make_network(TopologyKind::Mesh, 2, "crux");
  MappingProblem problem(std::move(cg), network,
                         make_objective(OptimizationGoal::InsertionLoss));
  Evaluator evaluator(problem, {.cache_capacity = 64, .incremental = true});
  SearchState state(evaluator, 4, 4, OptimizerBudget{500, 0.0}, 9);
  while (!state.exhausted())
    state.evaluate(Mapping::random(4, 4, state.rng()));
  EXPECT_EQ(state.evaluations(), 500u);
  EXPECT_EQ(evaluator.evaluation_count(), 500u);
  EXPECT_LE(evaluator.physical_evaluation_count(), 24u);
  EXPECT_EQ(evaluator.cache_hit_count(),
            evaluator.evaluation_count() -
                evaluator.physical_evaluation_count());
}

TEST(EvaluatorMemo, HitsPlusMissesEqualsCallsAndEvictionsAreCounted) {
  // The counting contract the service metrics rely on: with the memo
  // enabled, every evaluate() is either a hit or a miss, and misses
  // are exactly the physical evaluations.
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator evaluator(problem, {.cache_capacity = 2, .incremental = true});
  Rng rng(11);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 4; ++i)
    mappings.push_back(Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng));
  for (const auto& mapping : mappings) (void)evaluator.evaluate(mapping);
  EXPECT_EQ(evaluator.cache_miss_count(), 4u);
  EXPECT_EQ(evaluator.cache_hit_count(), 0u);
  // Capacity 2, four distinct entries: the two oldest were evicted.
  EXPECT_EQ(evaluator.cache_eviction_count(), 2u);
  // The most recent mapping is still cached; the oldest is not.
  (void)evaluator.evaluate(mappings[3]);
  EXPECT_EQ(evaluator.cache_hit_count(), 1u);
  (void)evaluator.evaluate(mappings[0]);
  EXPECT_EQ(evaluator.cache_miss_count(), 5u);
  EXPECT_EQ(evaluator.cache_hit_count() + evaluator.cache_miss_count(),
            evaluator.evaluation_count());
  EXPECT_EQ(evaluator.cache_miss_count(),
            evaluator.physical_evaluation_count());
}

TEST(EvaluatorMemo, DisabledCacheCountsNothing) {
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator evaluator(problem, {.cache_capacity = 0, .incremental = true});
  Rng rng(12);
  const auto mapping = Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng);
  (void)evaluator.evaluate(mapping);
  (void)evaluator.evaluate(mapping);
  EXPECT_EQ(evaluator.cache_hit_count(), 0u);
  EXPECT_EQ(evaluator.cache_miss_count(), 0u);
  EXPECT_EQ(evaluator.cache_eviction_count(), 0u);
}

TEST(EvaluatorMemo, ExportPreloadShiftsCostWithoutCountingActivity) {
  // The cross-request bank protocol: export from one evaluator, preload
  // into a fresh one, and the repeat request pays zero physical
  // evaluations — while the preload itself counts as no activity.
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator donor(problem, {.cache_capacity = 64, .incremental = true});
  Rng rng(13);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 3; ++i)
    mappings.push_back(Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng));
  std::vector<double> fitness;
  for (const auto& mapping : mappings)
    fitness.push_back(donor.evaluate(mapping));

  const auto snapshot = donor.export_memo();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  // Most-recent first: the head is the last mapping evaluated.
  EXPECT_TRUE(std::equal(snapshot.entries[0].assignment.begin(),
                         snapshot.entries[0].assignment.end(),
                         mappings[2].assignment().begin(),
                         mappings[2].assignment().end()));

  Evaluator fresh(problem, {.cache_capacity = 64, .incremental = true});
  fresh.preload_memo(snapshot);
  EXPECT_EQ(fresh.cache_hit_count(), 0u);
  EXPECT_EQ(fresh.cache_miss_count(), 0u);
  EXPECT_EQ(fresh.cache_eviction_count(), 0u);
  EXPECT_EQ(fresh.physical_evaluation_count(), 0u);
  for (std::size_t i = 0; i < mappings.size(); ++i)
    EXPECT_EQ(fresh.evaluate(mappings[i]), fitness[i]);  // bitwise
  EXPECT_EQ(fresh.cache_hit_count(), 3u);
  EXPECT_EQ(fresh.physical_evaluation_count(), 0u);
}

TEST(EvaluatorMemo, PreloadRespectsCapacityAndKeepsTheFreshest) {
  const auto problem = make_test_problem("mesh", "worst_snr", 31);
  Evaluator donor(problem, {.cache_capacity = 64, .incremental = true});
  Rng rng(14);
  std::vector<Mapping> mappings;
  for (int i = 0; i < 4; ++i)
    mappings.push_back(Mapping::random(problem.task_count(),
                                       problem.tile_count(), rng));
  for (const auto& mapping : mappings) (void)donor.evaluate(mapping);

  Evaluator tiny(problem, {.cache_capacity = 2, .incremental = true});
  tiny.preload_memo(donor.export_memo());
  EXPECT_EQ(tiny.cache_eviction_count(), 0u);  // preload never evicts
  // Only the snapshot's two most recent entries fit.
  (void)tiny.evaluate(mappings[3]);
  (void)tiny.evaluate(mappings[2]);
  EXPECT_EQ(tiny.cache_hit_count(), 2u);
  (void)tiny.evaluate(mappings[0]);
  EXPECT_EQ(tiny.cache_miss_count(), 1u);
}

TEST(EvaluatorRaw, HonorsObjectiveDetailNeeds) {
  // evaluate_raw used to drop per-edge detail unconditionally, so
  // objective().fitness(evaluate_raw(m)) threw for detail-needing
  // objectives; it now mirrors the objective's needs.
  const auto detail_problem =
      make_test_problem("mesh", "bandwidth_weighted_loss", 13);
  const auto scalar_problem = make_test_problem("mesh", "worst_snr", 13);
  Rng rng(6);
  const auto mapping = Mapping::random(detail_problem.task_count(),
                                       detail_problem.tile_count(), rng);
  const Evaluator with_detail(detail_problem);
  const Evaluator without_detail(scalar_problem);
  const auto raw = with_detail.evaluate_raw(mapping);
  EXPECT_EQ(raw.edges.size(), detail_problem.cg().communication_count());
  EXPECT_NO_THROW((void)detail_problem.objective().fitness(raw));
  EXPECT_TRUE(without_detail.evaluate_raw(mapping).edges.empty());
}

TEST(MappingHash, SensitiveToOrderAndContents) {
  const auto h1 = Mapping::from_assignment({0, 1, 2}, 4).hash();
  const auto h2 = Mapping::from_assignment({0, 2, 1}, 4).hash();
  const auto h3 = Mapping::from_assignment({0, 1, 3}, 4).hash();
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_EQ(h1, Mapping::from_assignment({0, 1, 2}, 4).hash());
  EXPECT_EQ(h1, assignment_hash(std::vector<TileId>{0, 1, 2}));
}

}  // namespace
}  // namespace phonoc
