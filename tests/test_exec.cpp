// Tests of the parallel batch-exploration subsystem: thread pool
// semantics, sweep grid expansion, aggregation, shard serialization,
// the fork/exec worker backend (bit-identity + crash isolation), and —
// the load-bearing property — bit-identical results across worker
// counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>

#include "core/engine.hpp"
#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/fork_exec.hpp"
#include "exec/serialize.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workloads/generator.hpp"

#ifndef PHONOC_WORKER_PATH
#define PHONOC_WORKER_PATH "phonoc_worker"
#endif

namespace phonoc {
namespace {

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW((void)future.get(), InvalidArgument);
}

TEST(ThreadPool, GracefulShutdownDrainsTheQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      (void)pool.submit([&executed] { ++executed; });
  }  // destructor: every submitted task still runs
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), ExecError);
}

TEST(ThreadPool, CancelPendingBreaksQueuedPromisesButFinishesInFlight) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    return 1;
  });
  // Only cancel once the blocker is in flight, so it is not discarded.
  while (!started.load()) std::this_thread::yield();
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 8; ++i) queued.push_back(pool.submit([] { return 2; }));
  pool.cancel_pending();
  release.store(true);
  EXPECT_EQ(blocker.get(), 1);  // in-flight task still completes
  for (auto& future : queued)
    EXPECT_THROW((void)future.get(), std::future_error);
}

TEST(ThreadPool, WaitIdleObservesAnEmptyQueue) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) (void)pool.submit([&executed] { ++executed; });
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 50);
  EXPECT_EQ(pool.pending(), 0u);
}

// --- sweep grid expansion --------------------------------------------------

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.add_workload("w0", pipeline_cg(4))
      .add_workload("w1", pipeline_cg(6))
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus, 3)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(50)
      .add_seed_range(1, 3);
  return spec;
}

TEST(SweepExpansion, EmptyDimensionMeansEmptyGrid) {
  SweepSpec spec = tiny_spec();
  spec.optimizers.clear();
  EXPECT_EQ(cell_count(spec), 0u);
  EXPECT_TRUE(expand(spec).empty());
  EXPECT_TRUE(BatchEngine({.workers = 2}).run(spec).empty());
}

TEST(SweepExpansion, SingleCellGrid) {
  SweepSpec spec;
  spec.add_workload("w", pipeline_cg(4))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rs")
      .add_budget(10)
      .add_seed(7);
  EXPECT_EQ(cell_count(spec), 1u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_EQ(spec.seeds[cells[0].seed], 7u);
}

TEST(SweepExpansion, CartesianCountAndRowMajorOrder) {
  const auto spec = tiny_spec();
  EXPECT_EQ(cell_count(spec), 2u * 2u * 1u * 2u * 1u * 3u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), cell_count(spec));
  std::set<std::size_t> indices;
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.index, grid_index(spec, cell.workload, cell.topology,
                                     cell.goal, cell.optimizer, cell.budget,
                                     cell.seed));
    indices.insert(cell.index);
  }
  EXPECT_EQ(indices.size(), cells.size());  // a bijection onto 0..N-1
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), cells.size() - 1);
  // The seed is the innermost (fastest-varying) dimension.
  EXPECT_EQ(cells[0].seed, 0u);
  EXPECT_EQ(cells[1].seed, 1u);
  EXPECT_EQ(cells[2].seed, 2u);
  EXPECT_EQ(cells[3].seed, 0u);
  EXPECT_EQ(cells[3].optimizer, 1u);
  // The workload is outermost.
  EXPECT_EQ(cells.front().workload, 0u);
  EXPECT_EQ(cells.back().workload, 1u);
}

TEST(SweepExpansion, GridIndexRejectsOutOfRangeCoordinates) {
  const auto spec = tiny_spec();
  EXPECT_THROW((void)grid_index(spec, 2, 0, 0, 0, 0, 0), InvalidArgument);
  EXPECT_THROW((void)grid_index(spec, 0, 0, 1, 0, 0, 0), InvalidArgument);
}

TEST(SweepExpansion, AutoSideFitsTheWorkload) {
  const auto spec = tiny_spec();
  // w0 has 4 tasks -> 2x2; w1 has 6 tasks -> 3x3; explicit side wins.
  EXPECT_EQ(resolved_side(spec, 0, 0), 2u);
  EXPECT_EQ(resolved_side(spec, 1, 0), 3u);
  EXPECT_EQ(resolved_side(spec, 0, 1), 3u);
  const auto problem = make_problem(spec, expand(spec)[0]);
  EXPECT_EQ(problem.tile_count(), 4u);
  EXPECT_EQ(problem.task_count(), 4u);
}

// --- aggregation -----------------------------------------------------------

TEST(Aggregate, CollapsesSeedsIntoOneCell) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  const auto report = SweepReport::build(spec, results);
  // Seed dimension (3 values) collapsed: 24 runs -> 8 aggregate cells.
  EXPECT_EQ(report.run_count, results.size());
  EXPECT_EQ(report.cells.size(), results.size() / spec.seeds.size());
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.best_fitness.count(), spec.seeds.size());
    EXPECT_GE(cell.best_fitness.max(), cell.best_fitness.mean());
    EXPECT_LE(cell.worst_loss_db.max(), 0.0);  // loss in dB is <= 0
    EXPECT_EQ(cell.evaluations.mean(), 50.0);  // budget is exact for rs
  }
  EXPECT_EQ(report.to_table().row_count(), report.cells.size());
}

TEST(Aggregate, MergeOfShardsEqualsTheWholeGrid) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  // Shard by parity of the grid index, aggregate separately, merge.
  std::vector<CellResult> even, odd;
  for (const auto& result : results)
    (result.cell.index % 2 == 0 ? even : odd).push_back(result);
  auto merged = SweepReport::build(spec, even);
  merged.merge(SweepReport::build(spec, odd));
  const auto whole = SweepReport::build(spec, results);
  ASSERT_EQ(merged.cells.size(), whole.cells.size());
  EXPECT_EQ(merged.run_count, whole.run_count);
  for (const auto& want : whole.cells) {
    const AggregateCell* got = nullptr;
    for (const auto& cell : merged.cells)
      if (cell.workload == want.workload && cell.topology == want.topology &&
          cell.goal == want.goal && cell.optimizer == want.optimizer &&
          cell.budget == want.budget)
        got = &cell;
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->best_fitness.count(), want.best_fitness.count());
    EXPECT_NEAR(got->best_fitness.mean(), want.best_fitness.mean(), 1e-12);
    EXPECT_NEAR(got->best_fitness.stddev(), want.best_fitness.stddev(),
                1e-9);
    EXPECT_EQ(got->worst_loss_db.min(), want.worst_loss_db.min());
    EXPECT_EQ(got->worst_loss_db.max(), want.worst_loss_db.max());
  }
}

TEST(Aggregate, AddRejectsForeignCellsAndCsvHasHeaderAndRows) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  auto report = SweepReport::build(spec, results);
  AggregateCell& cell = report.cells.front();
  CellResult foreign = results.back();
  EXPECT_THROW(cell.add(foreign), InvalidArgument);
  std::ostringstream csv;
  report.write_csv(csv);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(csv.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + report.cells.size());
}

// --- wire-format round trips -----------------------------------------------

SweepSpec wire_spec() {
  SweepSpec spec;
  // A workload name with a space and the comment character: both must
  // round-trip verbatim (the name is the rest of the directive line).
  spec.add_workload("p4 #1", pipeline_cg(4))
      .add_workload("r6", random_cg({.tasks = 6,
                                     .avg_out_degree = 1.5,
                                     .min_bandwidth = 8,
                                     .max_bandwidth = 128,
                                     .seed = 11,
                                     .acyclic = false}))
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus, 3)
      .add_goal(OptimizationGoal::Snr)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(40)
      .add_budget(60, 0.125)
      .add_seed(3)
      .add_seed(21);
  spec.tile_pitch_mm = 2.2501;
  spec.parameters.crossing_loss_db = -0.0431;
  spec.parameters.pse_on_crosstalk_db = -24.7;
  spec.model_options.fidelity = ModelFidelity::Full;
  spec.model_options.conflict_policy = ConflictPolicy::Ignore;
  spec.model_options.snr_ceiling_db = 180.25;
  return spec;
}

TEST(Serialize, ShardRoundTripsEveryField) {
  SweepShard shard;
  shard.spec = wire_spec();
  shard.begin = 7;
  shard.end = 23;
  shard.evaluator = {.cache_capacity = 99, .incremental = false};
  std::ostringstream out;
  write_shard(out, shard);
  std::istringstream in(out.str());
  const auto parsed = read_shard(in);

  EXPECT_EQ(parsed.begin, 7u);
  EXPECT_EQ(parsed.end, 23u);
  EXPECT_EQ(parsed.evaluator.cache_capacity, 99u);
  EXPECT_FALSE(parsed.evaluator.incremental);
  const auto& a = shard.spec;
  const auto& b = parsed.spec;
  EXPECT_EQ(b.router, a.router);
  EXPECT_EQ(b.tile_pitch_mm, a.tile_pitch_mm);  // bitwise
  EXPECT_EQ(b.parameters.crossing_loss_db, a.parameters.crossing_loss_db);
  EXPECT_EQ(b.parameters.pse_on_crosstalk_db,
            a.parameters.pse_on_crosstalk_db);
  EXPECT_EQ(b.parameters.propagation_loss_db_per_cm,
            a.parameters.propagation_loss_db_per_cm);
  EXPECT_EQ(b.model_options.fidelity, a.model_options.fidelity);
  EXPECT_EQ(b.model_options.conflict_policy, a.model_options.conflict_policy);
  EXPECT_EQ(b.model_options.snr_ceiling_db, a.model_options.snr_ceiling_db);
  ASSERT_EQ(b.goals, a.goals);
  ASSERT_EQ(b.optimizers, a.optimizers);
  ASSERT_EQ(b.seeds, a.seeds);
  ASSERT_EQ(b.budgets.size(), a.budgets.size());
  for (std::size_t i = 0; i < a.budgets.size(); ++i) {
    EXPECT_EQ(b.budgets[i].max_evaluations, a.budgets[i].max_evaluations);
    EXPECT_EQ(b.budgets[i].max_seconds, a.budgets[i].max_seconds);
  }
  ASSERT_EQ(b.topologies.size(), a.topologies.size());
  for (std::size_t i = 0; i < a.topologies.size(); ++i) {
    EXPECT_EQ(b.topologies[i].kind, a.topologies[i].kind);
    EXPECT_EQ(b.topologies[i].side, a.topologies[i].side);
  }
  ASSERT_EQ(b.workloads.size(), a.workloads.size());
  for (std::size_t i = 0; i < a.workloads.size(); ++i) {
    EXPECT_EQ(b.workloads[i].name, a.workloads[i].name);
    ASSERT_EQ(b.workloads[i].cg.task_count(), a.workloads[i].cg.task_count());
    const auto ea = a.workloads[i].cg.edges();
    const auto eb = b.workloads[i].cg.edges();
    ASSERT_EQ(eb.size(), ea.size());
    for (std::size_t e = 0; e < ea.size(); ++e) {
      EXPECT_EQ(eb[e].src, ea[e].src);
      EXPECT_EQ(eb[e].dst, ea[e].dst);
      EXPECT_EQ(eb[e].bandwidth_mbps, ea[e].bandwidth_mbps);  // bitwise
    }
  }
  // The grid the receiver expands is the same grid.
  EXPECT_EQ(cell_count(b), cell_count(a));
}

TEST(Serialize, CellResultRoundTripsBitForBit) {
  SweepSpec spec;
  spec.add_workload("w", pipeline_cg(4))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rpbla")
      .add_budget(60)
      .add_seed(5);
  const auto results = BatchEngine({.workers = 1}).run(spec);
  ASSERT_EQ(results.size(), 1u);

  std::ostringstream out;
  write_cell_result(out, results[0]);
  std::istringstream in(out.str());
  const auto parsed = read_cell_result(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, CellStatus::Ok);
  EXPECT_EQ(parsed->cell.index, results[0].cell.index);
  EXPECT_EQ(parsed->seed, results[0].seed);
  EXPECT_EQ(parsed->seconds, results[0].seconds);  // bitwise
  EXPECT_EQ(parsed->run.algorithm, results[0].run.algorithm);
  EXPECT_TRUE(parsed->run.search.best == results[0].run.search.best);
  EXPECT_EQ(parsed->run.search.best_fitness,
            results[0].run.search.best_fitness);
  EXPECT_EQ(parsed->run.search.evaluations, results[0].run.search.evaluations);
  ASSERT_EQ(parsed->run.search.trace.size(),
            results[0].run.search.trace.size());
  for (std::size_t i = 0; i < parsed->run.search.trace.size(); ++i) {
    EXPECT_EQ(parsed->run.search.trace[i].evaluation,
              results[0].run.search.trace[i].evaluation);
    EXPECT_EQ(parsed->run.search.trace[i].fitness,
              results[0].run.search.trace[i].fitness);
  }
  ASSERT_EQ(parsed->run.best_evaluation.edges.size(),
            results[0].run.best_evaluation.edges.size());
  for (std::size_t i = 0; i < parsed->run.best_evaluation.edges.size(); ++i) {
    const auto& pe = parsed->run.best_evaluation.edges[i];
    const auto& re = results[0].run.best_evaluation.edges[i];
    EXPECT_EQ(pe.edge, re.edge);
    EXPECT_EQ(pe.src_tile, re.src_tile);
    EXPECT_EQ(pe.dst_tile, re.dst_tile);
    EXPECT_EQ(pe.loss_db, re.loss_db);
    EXPECT_EQ(pe.signal_gain, re.signal_gain);
    EXPECT_EQ(pe.noise_gain, re.noise_gain);
    EXPECT_EQ(pe.snr_db, re.snr_db);
  }

  // End of stream is a clean nullopt, not an error.
  EXPECT_FALSE(read_cell_result(in).has_value());
}

TEST(Serialize, FailedCellRoundTripsAndTornBlocksThrow) {
  CellResult failed;
  failed.cell = {.index = 42, .workload = 1, .topology = 0, .goal = 1,
                 .optimizer = 0, .budget = 1, .seed = 1};
  failed.seed = 21;
  failed.status = CellStatus::Failed;
  // '#' is the wire format's comment character: free-text payloads must
  // survive it anyway.
  failed.error = "worker killed by signal 6 (Aborted) #core dumped";
  std::ostringstream out;
  write_cell_result(out, failed);
  std::istringstream in(out.str());
  const auto parsed = read_cell_result(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, CellStatus::Failed);
  EXPECT_EQ(parsed->cell.index, 42u);
  EXPECT_EQ(parsed->seed, 21u);
  EXPECT_EQ(parsed->error, failed.error);

  // A block truncated mid-write (as a crashing worker leaves behind)
  // throws ParseError instead of yielding a half-filled result.
  const auto text = out.str();
  std::istringstream torn(text.substr(0, text.size() / 2));
  EXPECT_THROW((void)read_cell_result(torn), ParseError);
}

TEST(Serialize, NonFiniteDoublesRoundTripThroughTheWireFormat) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  // The primitive first: canonical tokens in, value + sign bit out.
  for (const double value : {nan, -nan, inf, -inf}) {
    const auto parsed = parse_double(format_double(value));
    EXPECT_EQ(std::isnan(parsed), std::isnan(value));
    EXPECT_EQ(std::isinf(parsed), std::isinf(value));
    EXPECT_EQ(std::signbit(parsed), std::signbit(value));
  }

  // Non-finite metrics in a cell result (an SNR can legitimately reach
  // +inf when a mapping sees zero noise).
  SweepSpec spec;
  spec.add_workload("w", pipeline_cg(4))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rs")
      .add_budget(20)
      .add_seed(5);
  auto results = BatchEngine({.workers = 1}).run(spec);
  ASSERT_EQ(results.size(), 1u);
  results[0].run.best_evaluation.worst_snr_db = inf;
  results[0].run.search.best_fitness = -inf;
  ASSERT_FALSE(results[0].run.best_evaluation.edges.empty());
  results[0].run.best_evaluation.edges[0].loss_db = nan;
  results[0].run.best_evaluation.edges[0].noise_gain = -inf;
  std::ostringstream cell_out;
  write_cell_result(cell_out, results[0]);
  std::istringstream cell_in(cell_out.str());
  const auto cell = read_cell_result(cell_in);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->run.best_evaluation.worst_snr_db, inf);
  EXPECT_EQ(cell->run.search.best_fitness, -inf);
  EXPECT_TRUE(std::isnan(cell->run.best_evaluation.edges[0].loss_db));
  EXPECT_EQ(cell->run.best_evaluation.edges[0].noise_gain, -inf);

  // Non-finite physical parameters in a shard (e.g. an "infinite"
  // crosstalk suppression sentinel).
  SweepShard shard;
  shard.spec = spec;
  shard.spec.parameters.crossing_crosstalk_db = -inf;
  shard.spec.parameters.pse_off_crosstalk_db = nan;
  shard.end = 1;
  std::ostringstream shard_out;
  write_shard(shard_out, shard);
  std::istringstream shard_in(shard_out.str());
  const auto parsed = read_shard(shard_in);
  EXPECT_EQ(parsed.spec.parameters.crossing_crosstalk_db, -inf);
  EXPECT_TRUE(std::isnan(parsed.spec.parameters.pse_off_crosstalk_db));
}

// --- wall-clock-fair mode ---------------------------------------------------

void expect_identical(const RunResult& a, const RunResult& b);

TEST(BatchEngine, PinOneCellPerThreadCapsTheWorkerCount) {
  const auto hardware = ThreadPool::default_worker_count();
  // A grossly oversubscribed request is clamped to the hardware
  // threads, so at most one cell is in flight per thread and
  // max_seconds budgets stay comparable.
  const BatchEngine pinned({.workers = ThreadPool::kMaxWorkers,
                            .pin_one_cell_per_thread = true});
  EXPECT_EQ(pinned.worker_count(), hardware);
  // Undersubscribed requests are untouched, and the flag changes no
  // results: a pinned run is bit-identical to the default (the
  // determinism contract is worker-count independent).
  const BatchEngine modest({.workers = 1, .pin_one_cell_per_thread = true});
  EXPECT_EQ(modest.worker_count(), 1u);
  const auto spec = tiny_spec();
  const auto reference = BatchEngine({.workers = 2}).run(spec);
  const auto pinned_results =
      BatchEngine({.pin_one_cell_per_thread = true}).run(spec);
  ASSERT_EQ(pinned_results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_identical(pinned_results[i].run, reference[i].run);
}

// --- fork/exec worker backend ----------------------------------------------

/// Scoped PHONOC_WORKER_CRASH_INDEX (the worker's crash-injection hook).
class ScopedCrashIndex {
 public:
  explicit ScopedCrashIndex(std::size_t index) {
    ::setenv("PHONOC_WORKER_CRASH_INDEX", std::to_string(index).c_str(), 1);
  }
  ~ScopedCrashIndex() { ::unsetenv("PHONOC_WORKER_CRASH_INDEX"); }
};

void expect_identical(const RunResult& a, const RunResult& b);

TEST(ForkExec, MatchesInProcessBitForBitOn64Cells) {
  auto spec = wire_spec();  // 2^6 dimensions = 64 cells
  // Evaluation-count budgets only: the determinism contract excludes
  // wall-clock caps, and this test must never flake under load.
  spec.budgets[1].max_seconds = 0.0;
  ASSERT_GE(cell_count(spec), 64u);
  const auto reference = BatchEngine({.workers = 2}).run(spec);
  const auto forked = BatchEngine({.workers = 4,
                                   .backend = BatchBackend::ForkExec,
                                   .worker_path = PHONOC_WORKER_PATH})
                          .run(spec);
  ASSERT_EQ(forked.size(), reference.size());
  for (std::size_t i = 0; i < forked.size(); ++i) {
    ASSERT_EQ(forked[i].status, CellStatus::Ok) << forked[i].error;
    EXPECT_EQ(forked[i].cell.index, i);
    EXPECT_EQ(forked[i].seed, reference[i].seed);
    expect_identical(forked[i].run, reference[i].run);
  }
  // The aggregated SweepReports agree on every non-timing statistic.
  const auto want = SweepReport::build(spec, reference);
  const auto got = SweepReport::build(spec, forked);
  ASSERT_EQ(got.cells.size(), want.cells.size());
  EXPECT_EQ(got.run_count, want.run_count);
  EXPECT_EQ(got.failed_count, 0u);
  for (std::size_t i = 0; i < got.cells.size(); ++i) {
    for (const auto member : {&AggregateCell::best_fitness,
                              &AggregateCell::worst_loss_db,
                              &AggregateCell::worst_snr_db,
                              &AggregateCell::evaluations}) {
      const auto& g = got.cells[i].*member;
      const auto& w = want.cells[i].*member;
      EXPECT_EQ(g.count(), w.count());
      EXPECT_EQ(g.mean(), w.mean());      // bitwise
      EXPECT_EQ(g.min(), w.min());
      EXPECT_EQ(g.max(), w.max());
      EXPECT_EQ(g.stddev(), w.stddev());
    }
  }
}

TEST(ForkExec, InjectedCrashFailsOnlyThatCell) {
  auto spec = wire_spec();
  spec.budgets[1].max_seconds = 0.0;  // keep the grid deterministic
  const std::size_t crash_index = 10;
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  const ScopedCrashIndex scoped(crash_index);
  const auto forked = BatchEngine({.workers = 4,
                                   .backend = BatchBackend::ForkExec,
                                   .worker_path = PHONOC_WORKER_PATH})
                          .run(spec);
  ASSERT_EQ(forked.size(), reference.size());
  for (std::size_t i = 0; i < forked.size(); ++i) {
    if (i == crash_index) {
      EXPECT_EQ(forked[i].status, CellStatus::Failed);
      EXPECT_NE(forked[i].error.find("signal"), std::string::npos)
          << forked[i].error;
      // Coordinates and seed survive so the failure is attributable.
      EXPECT_EQ(forked[i].cell.index, crash_index);
      EXPECT_EQ(forked[i].seed, spec.seeds[forked[i].cell.seed]);
    } else {
      ASSERT_EQ(forked[i].status, CellStatus::Ok)
          << "cell " << i << ": " << forked[i].error;
      expect_identical(forked[i].run, reference[i].run);
    }
  }
  const auto report = SweepReport::build(spec, forked);
  EXPECT_EQ(report.failed_count, 1u);
  EXPECT_EQ(report.run_count, forked.size() - 1);
}

TEST(ForkExec, MissingWorkerBinaryFailsFast) {
  SweepSpec spec;
  spec.add_workload("w", pipeline_cg(4))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rs")
      .add_budget(10)
      .add_seed(1);
  EXPECT_THROW((void)BatchEngine(
                   {.workers = 1,
                    .backend = BatchBackend::ForkExec,
                    .worker_path = "/nonexistent/phonoc_worker"})
                   .run(spec),
               ExecError);
}

// --- the Sample task kind ---------------------------------------------------

/// 2 apps x 4 sub-cells (seeds), 50 random mappings per sub-cell. The
/// optimizer/budget dimensions are the use_sampling() placeholders.
SweepSpec sampling_spec() {
  SweepSpec spec;
  spec.add_workload("p5", pipeline_cg(5))
      .add_workload("r7", random_cg({.tasks = 7,
                                     .avg_out_degree = 1.6,
                                     .min_bandwidth = 8,
                                     .max_bandwidth = 128,
                                     .seed = 19,
                                     .acyclic = false}))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_seed_range(5, 4)
      .use_sampling({.samples_per_cell = 50});
  return spec;
}

/// Exact double equality with well-defined NaN handling: NaNs match
/// NaNs of the same sign (the wire format's canonicalization contract),
/// everything else must be == (bitwise for round-tripped values).
void expect_same_double(double got, double want) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got));
    EXPECT_EQ(std::signbit(got), std::signbit(want));
  } else {
    EXPECT_EQ(got, want);
  }
}

void expect_identical_distribution(const DistributionResult& got,
                                   const DistributionResult& want) {
  EXPECT_EQ(got.samples, want.samples);
  ASSERT_EQ(got.metrics.size(), want.metrics.size());
  for (std::size_t m = 0; m < got.metrics.size(); ++m) {
    const auto& g = got.metrics[m];
    const auto& w = want.metrics[m];
    EXPECT_EQ(g.metric, w.metric);
    ASSERT_EQ(g.histogram.bins(), w.histogram.bins());
    EXPECT_EQ(g.histogram.lo(), w.histogram.lo());  // bitwise
    EXPECT_EQ(g.histogram.hi(), w.histogram.hi());
    EXPECT_EQ(g.histogram.underflow(), w.histogram.underflow());
    EXPECT_EQ(g.histogram.overflow(), w.histogram.overflow());
    EXPECT_EQ(g.histogram.total(), w.histogram.total());
    for (std::size_t b = 0; b < g.histogram.bins(); ++b)
      EXPECT_EQ(g.histogram.count(b), w.histogram.count(b)) << "bin " << b;
    EXPECT_EQ(g.stats.count(), w.stats.count());
    expect_same_double(g.stats.mean(), w.stats.mean());
    expect_same_double(g.stats.sum_squared_deviations(),
                       w.stats.sum_squared_deviations());
    expect_same_double(g.stats.min(), w.stats.min());
    expect_same_double(g.stats.max(), w.stats.max());
  }
}

/// Merge one workload's sub-cell distributions in grid (seed) order.
DistributionResult merge_workload(const SweepSpec& spec,
                                  const std::vector<CellResult>& results,
                                  std::size_t workload) {
  const auto subcells = spec.seeds.size();
  return merge_cell_distributions(results, workload * subcells, subcells);
}

TEST(SampleKind, MergedDistributionsBitIdenticalAcrossWorkersAndBackends) {
  const auto spec = sampling_spec();
  ASSERT_EQ(cell_count(spec), 8u);
  const auto reference = BatchEngine({.workers = 1}).run(spec);
  for (const auto& cell : reference) {
    ASSERT_EQ(cell.status, CellStatus::Ok) << cell.error;
    EXPECT_EQ(cell.distribution.samples,
              spec.sampling.samples_per_cell);
    ASSERT_EQ(cell.distribution.metrics.size(), 2u);
    EXPECT_EQ(cell.distribution.metrics[0].metric, "snr_db");
    EXPECT_EQ(cell.distribution.metrics[1].metric, "loss_db");
    EXPECT_EQ(cell.distribution.metrics[0].stats.count(),
              spec.sampling.samples_per_cell);
  }

  // The acceptance property: per-cell and merged distributions are
  // bit-identical for workers {1, 2, 8} on the in-process pool and
  // through fork/exec worker processes.
  std::vector<std::vector<CellResult>> runs;
  for (const std::size_t workers : {2u, 8u})
    runs.push_back(BatchEngine({.workers = workers}).run(spec));
  for (const std::size_t workers : {1u, 4u})
    runs.push_back(BatchEngine({.workers = workers,
                                .backend = BatchBackend::ForkExec,
                                .worker_path = PHONOC_WORKER_PATH})
                       .run(spec));
  for (const auto& run : runs) {
    ASSERT_EQ(run.size(), reference.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      ASSERT_EQ(run[i].status, CellStatus::Ok) << run[i].error;
      EXPECT_EQ(run[i].seed, reference[i].seed);
      expect_identical_distribution(run[i].distribution,
                                    reference[i].distribution);
    }
    for (std::size_t w = 0; w < spec.workloads.size(); ++w)
      expect_identical_distribution(merge_workload(spec, run, w),
                                    merge_workload(spec, reference, w));
  }

  // Merging the sub-cells really yields the whole app's sample count,
  // and the library comparator agrees with the gtest one.
  const auto merged = merge_workload(spec, reference, 0);
  EXPECT_EQ(merged.samples,
            spec.sampling.samples_per_cell * spec.seeds.size());
  EXPECT_EQ(merged.find("snr_db")->stats.count(), merged.samples);
  EXPECT_EQ(merged.find("missing"), nullptr);
  EXPECT_TRUE(identical_distributions(merged,
                                      merge_workload(spec, runs[0], 0)));
  EXPECT_FALSE(identical_distributions(merged,
                                       reference[0].distribution));

  // The canonical fold refuses to merge around a failed sub-cell.
  auto broken = reference;
  broken[1].status = CellStatus::Failed;
  broken[1].error = "injected";
  EXPECT_THROW((void)merge_workload(spec, broken, 0), ExecError);
}

TEST(SampleKind, DistributionMergeRejectsForeignShapes) {
  DistributionResult a;
  a.metrics = {{"snr_db", Histogram(0.0, 45.0, 30), {}}};
  DistributionResult wrong_name;
  wrong_name.metrics = {{"loss_db", Histogram(0.0, 45.0, 30), {}}};
  EXPECT_THROW(a.merge(wrong_name), InvalidArgument);
  DistributionResult wrong_count;
  EXPECT_THROW(a.merge(wrong_count), InvalidArgument);
  DistributionResult wrong_bins;
  wrong_bins.metrics = {{"snr_db", Histogram(0.0, 45.0, 60), {}}};
  EXPECT_THROW(a.merge(wrong_bins), InvalidArgument);
}

TEST(Serialize, SamplingShardRoundTripsTaskKindAndKnobs) {
  SweepShard shard;
  shard.spec = sampling_spec();
  shard.spec.sampling.snr_lo_db = -2.25;
  shard.spec.sampling.snr_bins = 17;
  shard.spec.sampling.loss_hi_db = 0.5;
  shard.begin = 2;
  shard.end = 6;
  std::ostringstream out;
  write_shard(out, shard);
  std::istringstream in(out.str());
  const auto parsed = read_shard(in);
  EXPECT_EQ(parsed.spec.task_kind, SweepTaskKind::Sample);
  const auto& a = shard.spec.sampling;
  const auto& b = parsed.spec.sampling;
  EXPECT_EQ(b.samples_per_cell, a.samples_per_cell);
  EXPECT_EQ(b.snr_lo_db, a.snr_lo_db);  // bitwise
  EXPECT_EQ(b.snr_hi_db, a.snr_hi_db);
  EXPECT_EQ(b.snr_bins, a.snr_bins);
  EXPECT_EQ(b.loss_lo_db, a.loss_lo_db);
  EXPECT_EQ(b.loss_hi_db, a.loss_hi_db);
  EXPECT_EQ(b.loss_bins, a.loss_bins);
  EXPECT_EQ(parsed.spec.optimizers, shard.spec.optimizers);  // placeholder

  // An Optimize-kind shard carries no task_kind directive at all, so
  // pre-sampling readers keep parsing it (and ours defaults the kind).
  SweepShard optimize;
  optimize.spec = tiny_spec();
  std::ostringstream optimize_out;
  write_shard(optimize_out, optimize);
  EXPECT_EQ(optimize_out.str().find("task_kind"), std::string::npos);
  std::istringstream optimize_in(optimize_out.str());
  EXPECT_EQ(read_shard(optimize_in).spec.task_kind, SweepTaskKind::Optimize);
}

TEST(Serialize, DistributionResultRoundTripsBitForBitIncludingNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  CellResult cell;
  cell.cell = {.index = 3, .workload = 1, .topology = 0, .goal = 0,
               .optimizer = 0, .budget = 0, .seed = 3};
  cell.seed = 8;
  cell.seconds = 0.25;
  Histogram snr_hist(0.0, 45.0, 5);
  for (const double v : {-3.0, 1.0, 13.7, 44.999, 200.0}) snr_hist.add(v);
  // A metric whose samples hit NaN/±Inf (zero-noise mappings produce
  // +inf SNR legitimately): the accumulator state must survive the wire
  // bit-for-bit, sign bits and all.
  cell.distribution.samples = 5;
  cell.distribution.metrics = {
      {"snr_db", snr_hist,
       RunningStats::from_parts(5, nan, inf, -inf, inf)},
      {"loss_db", Histogram(-4.5, 0.0, 3),
       RunningStats::from_parts(0, 0.0, 0.0, 0.0, 0.0)}};

  std::ostringstream out;
  write_cell_result(out, cell);
  std::istringstream in(out.str());
  const auto parsed = read_cell_result(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, CellStatus::Ok);
  EXPECT_EQ(parsed->cell.index, 3u);
  EXPECT_EQ(parsed->seed, 8u);
  EXPECT_EQ(parsed->seconds, 0.25);
  ASSERT_EQ(parsed->distribution.metrics.size(), 2u);
  const auto& stats = parsed->distribution.metrics[0].stats;
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_TRUE(std::isnan(stats.mean()));
  EXPECT_EQ(stats.sum_squared_deviations(), inf);
  EXPECT_EQ(stats.min(), -inf);
  EXPECT_EQ(stats.max(), inf);
  expect_identical_distribution(parsed->distribution, cell.distribution);

  // A torn distribution block (producer died mid-write) is an explicit
  // ParseError, same as the Optimize payload.
  const auto text = out.str();
  std::istringstream torn(text.substr(0, text.size() * 2 / 3));
  EXPECT_THROW((void)read_cell_result(torn), ParseError);

  // The end-to-end wire path: a sampled cell run by the real sample
  // body round-trips bit-exactly.
  const auto spec = sampling_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  std::ostringstream real_out;
  write_cell_result(real_out, results[0]);
  std::istringstream real_in(real_out.str());
  const auto real = read_cell_result(real_in);
  ASSERT_TRUE(real.has_value());
  expect_identical_distribution(real->distribution, results[0].distribution);
}

// --- the network problem cache ---------------------------------------------

TEST(BatchEngine, NetworkCacheIsWorkloadIndependent) {
  // build_sweep_problems keys shared networks on {resolved side,
  // topology index} and builds each network from whichever workload
  // reaches it first. This is sound because a network never depends on
  // the workload beyond its resolved side: two different 6-task
  // workloads sharing an auto-sized topology must produce cells
  // bit-identical to runs on per-cell fresh networks.
  SweepSpec spec;
  spec.add_workload("p6", pipeline_cg(6))
      .add_workload("r6", random_cg({.tasks = 6,
                                     .avg_out_degree = 1.8,
                                     .seed = 23,
                                     .acyclic = false}))
      .add_topology(TopologyKind::Mesh)  // auto side: 3x3 for both
      .add_topology(TopologyKind::Torus)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(50)
      .add_seed(9);
  ASSERT_EQ(resolved_side(spec, 0, 0), resolved_side(spec, 1, 0));
  const auto cached = BatchEngine({.workers = 1}).run(spec);
  for (const auto& cell : expand(spec)) {
    // Fresh network for every cell: no sharing at all.
    const auto fresh_problem = make_problem(spec, cell, nullptr);
    const auto fresh = run_sweep_cell(spec, cell, fresh_problem, {});
    expect_identical(cached[cell.index].run, fresh.run);
  }
}

// --- failed cells in aggregation -------------------------------------------

TEST(Aggregate, FailedCellsAreCountedButExcludedFromStats) {
  const auto spec = tiny_spec();
  auto results = BatchEngine({.workers = 1}).run(spec);
  const auto clean = SweepReport::build(spec, results, 1.5);
  EXPECT_EQ(clean.wall_seconds, 1.5);
  EXPECT_EQ(clean.failed_count, 0u);

  // Kill one seed of the first coordinate.
  results[0].status = CellStatus::Failed;
  results[0].error = "injected";
  const auto report = SweepReport::build(spec, results, 1.5);
  EXPECT_EQ(report.failed_count, 1u);
  EXPECT_EQ(report.run_count, results.size() - 1);
  EXPECT_EQ(report.cells.front().best_fitness.count(),
            spec.seeds.size() - 1);
  // cpu_seconds only sums successful cells.
  EXPECT_NEAR(report.cpu_seconds + results[0].seconds, clean.cpu_seconds,
              1e-12);

  // Merge accumulates both counters and both clocks.
  auto merged = SweepReport::build(spec, results, 2.0);
  merged.merge(report);
  EXPECT_EQ(merged.failed_count, 2u);
  EXPECT_EQ(merged.wall_seconds, 3.5);

  // A coordinate whose every seed failed still gets a report row (0
  // runs), so rows stay aligned with the grid.
  for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
    results[s].status = CellStatus::Failed;
    results[s].error = "injected";
  }
  const auto all_failed = SweepReport::build(spec, results);
  EXPECT_EQ(all_failed.cells.size(), clean.cells.size());
  EXPECT_EQ(all_failed.cells.front().best_fitness.count(), 0u);
  EXPECT_EQ(all_failed.failed_count, spec.seeds.size());
  EXPECT_EQ(all_failed.to_table().row_count(), clean.cells.size());
}

// --- the determinism property ---------------------------------------------
//
// For random problems, BatchEngine with 1, 2 and 8 workers produces
// bit-identical RunResults to sequential Engine::compare with the same
// seeds. (Timing fields are the only allowed difference.)

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_TRUE(a.search.best == b.search.best);
  EXPECT_EQ(a.search.best_fitness, b.search.best_fitness);  // bitwise
  EXPECT_EQ(a.search.evaluations, b.search.evaluations);
  EXPECT_EQ(a.search.iterations, b.search.iterations);
  ASSERT_EQ(a.search.trace.size(), b.search.trace.size());
  for (std::size_t i = 0; i < a.search.trace.size(); ++i) {
    EXPECT_EQ(a.search.trace[i].evaluation, b.search.trace[i].evaluation);
    EXPECT_EQ(a.search.trace[i].fitness, b.search.trace[i].fitness);
  }
  EXPECT_EQ(a.best_evaluation.worst_loss_db, b.best_evaluation.worst_loss_db);
  EXPECT_EQ(a.best_evaluation.worst_snr_db, b.best_evaluation.worst_snr_db);
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, BatchEngineMatchesSequentialCompareBitForBit) {
  const auto problem_seed = GetParam();
  SweepSpec spec;
  spec.add_workload("random", random_cg({.tasks = 9,
                                         .avg_out_degree = 1.7,
                                         .min_bandwidth = 8,
                                         .max_bandwidth = 128,
                                         .seed = problem_seed,
                                         .acyclic = false}))
      .add_topology(TopologyKind::Mesh, 4)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "ga", "rpbla", "sa"})
      .add_budget(400)
      .add_seed(problem_seed)
      .add_seed(problem_seed + 17);

  // Sequential reference: the engine's fair-comparison protocol.
  const auto problem = make_problem(spec, expand(spec)[0]);
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 400;
  std::vector<std::vector<RunResult>> reference;  // [seed][optimizer]
  for (const auto seed : spec.seeds)
    reference.push_back(engine.compare(spec.optimizers, budget, seed));

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const auto results = BatchEngine({.workers = workers}).run(spec);
    ASSERT_EQ(results.size(), spec.optimizers.size() * spec.seeds.size());
    for (std::size_t o = 0; o < spec.optimizers.size(); ++o)
      for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
        const auto& got =
            results[grid_index(spec, 0, 0, 0, o, 0, s)];
        EXPECT_EQ(got.seed, spec.seeds[s]);
        expect_identical(got.run, reference[s][o]);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, DeterminismSweep,
                         ::testing::Values(3u, 29u, 404u));

TEST(Determinism, EvaluatorOptionsCannotChangeBatchResults) {
  // The evaluation memo and the incremental move path only change the
  // physical cost of a cell, never its outcome: a grid run with the
  // memo disabled and the move API on the whole-mapping fallback is
  // bit-identical to the default (LRU + incremental kernel) run.
  SweepSpec spec;
  spec.add_workload("random", random_cg({.tasks = 8,
                                         .avg_out_degree = 1.6,
                                         .seed = 12,
                                         .acyclic = false}))
      .add_topology(TopologyKind::Mesh, 3)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "sa", "tabu", "rpbla"})
      .add_budget(300)
      .add_seed(7);
  const auto defaults = BatchEngine({.workers = 2}).run(spec);
  const auto plain =
      BatchEngine({.workers = 2,
                   .evaluator = {.cache_capacity = 0, .incremental = false}})
          .run(spec);
  ASSERT_EQ(defaults.size(), plain.size());
  for (std::size_t i = 0; i < defaults.size(); ++i)
    expect_identical(defaults[i].run, plain[i].run);
}

TEST(Determinism, ParallelCompareMatchesSequentialCompare) {
  auto cg = random_cg({.tasks = 8, .avg_out_degree = 1.5, .seed = 5});
  MappingProblem problem(std::move(cg),
                         make_network(TopologyKind::Torus, 3, "crux"),
                         make_objective(OptimizationGoal::InsertionLoss));
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 300;
  const std::vector<std::string> names{"rs", "ga", "rpbla", "tabu"};
  const auto sequential = engine.compare(names, budget, 99);
  const auto pooled = engine.compare(names, budget, 99, 4);
  const auto batch =
      BatchEngine({.workers = 4}).compare(problem, names, budget, 99);
  ASSERT_EQ(pooled.size(), sequential.size());
  ASSERT_EQ(batch.size(), sequential.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    expect_identical(pooled[i], sequential[i]);
    expect_identical(batch[i], sequential[i]);
  }
}

}  // namespace
}  // namespace phonoc
