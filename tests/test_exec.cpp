// Tests of the parallel batch-exploration subsystem: thread pool
// semantics, sweep grid expansion, aggregation, and — the load-bearing
// property — bit-identical results across worker counts.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "core/engine.hpp"
#include "exec/aggregate.hpp"
#include "exec/batch_engine.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW((void)future.get(), InvalidArgument);
}

TEST(ThreadPool, GracefulShutdownDrainsTheQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      (void)pool.submit([&executed] { ++executed; });
  }  // destructor: every submitted task still runs
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), ExecError);
}

TEST(ThreadPool, CancelPendingBreaksQueuedPromisesButFinishesInFlight) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    return 1;
  });
  // Only cancel once the blocker is in flight, so it is not discarded.
  while (!started.load()) std::this_thread::yield();
  std::vector<std::future<int>> queued;
  for (int i = 0; i < 8; ++i) queued.push_back(pool.submit([] { return 2; }));
  pool.cancel_pending();
  release.store(true);
  EXPECT_EQ(blocker.get(), 1);  // in-flight task still completes
  for (auto& future : queued)
    EXPECT_THROW((void)future.get(), std::future_error);
}

TEST(ThreadPool, WaitIdleObservesAnEmptyQueue) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) (void)pool.submit([&executed] { ++executed; });
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 50);
  EXPECT_EQ(pool.pending(), 0u);
}

// --- sweep grid expansion --------------------------------------------------

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.add_workload("w0", pipeline_cg(4))
      .add_workload("w1", pipeline_cg(6))
      .add_topology(TopologyKind::Mesh)
      .add_topology(TopologyKind::Torus, 3)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "rpbla"})
      .add_budget(50)
      .add_seed_range(1, 3);
  return spec;
}

TEST(SweepExpansion, EmptyDimensionMeansEmptyGrid) {
  SweepSpec spec = tiny_spec();
  spec.optimizers.clear();
  EXPECT_EQ(cell_count(spec), 0u);
  EXPECT_TRUE(expand(spec).empty());
  EXPECT_TRUE(BatchEngine({.workers = 2}).run(spec).empty());
}

TEST(SweepExpansion, SingleCellGrid) {
  SweepSpec spec;
  spec.add_workload("w", pipeline_cg(4))
      .add_topology(TopologyKind::Mesh)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizer("rs")
      .add_budget(10)
      .add_seed(7);
  EXPECT_EQ(cell_count(spec), 1u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].index, 0u);
  EXPECT_EQ(spec.seeds[cells[0].seed], 7u);
}

TEST(SweepExpansion, CartesianCountAndRowMajorOrder) {
  const auto spec = tiny_spec();
  EXPECT_EQ(cell_count(spec), 2u * 2u * 1u * 2u * 1u * 3u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), cell_count(spec));
  std::set<std::size_t> indices;
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.index, grid_index(spec, cell.workload, cell.topology,
                                     cell.goal, cell.optimizer, cell.budget,
                                     cell.seed));
    indices.insert(cell.index);
  }
  EXPECT_EQ(indices.size(), cells.size());  // a bijection onto 0..N-1
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), cells.size() - 1);
  // The seed is the innermost (fastest-varying) dimension.
  EXPECT_EQ(cells[0].seed, 0u);
  EXPECT_EQ(cells[1].seed, 1u);
  EXPECT_EQ(cells[2].seed, 2u);
  EXPECT_EQ(cells[3].seed, 0u);
  EXPECT_EQ(cells[3].optimizer, 1u);
  // The workload is outermost.
  EXPECT_EQ(cells.front().workload, 0u);
  EXPECT_EQ(cells.back().workload, 1u);
}

TEST(SweepExpansion, GridIndexRejectsOutOfRangeCoordinates) {
  const auto spec = tiny_spec();
  EXPECT_THROW((void)grid_index(spec, 2, 0, 0, 0, 0, 0), InvalidArgument);
  EXPECT_THROW((void)grid_index(spec, 0, 0, 1, 0, 0, 0), InvalidArgument);
}

TEST(SweepExpansion, AutoSideFitsTheWorkload) {
  const auto spec = tiny_spec();
  // w0 has 4 tasks -> 2x2; w1 has 6 tasks -> 3x3; explicit side wins.
  EXPECT_EQ(resolved_side(spec, 0, 0), 2u);
  EXPECT_EQ(resolved_side(spec, 1, 0), 3u);
  EXPECT_EQ(resolved_side(spec, 0, 1), 3u);
  const auto problem = make_problem(spec, expand(spec)[0]);
  EXPECT_EQ(problem.tile_count(), 4u);
  EXPECT_EQ(problem.task_count(), 4u);
}

// --- aggregation -----------------------------------------------------------

TEST(Aggregate, CollapsesSeedsIntoOneCell) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  const auto report = SweepReport::build(spec, results);
  // Seed dimension (3 values) collapsed: 24 runs -> 8 aggregate cells.
  EXPECT_EQ(report.run_count, results.size());
  EXPECT_EQ(report.cells.size(), results.size() / spec.seeds.size());
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.best_fitness.count(), spec.seeds.size());
    EXPECT_GE(cell.best_fitness.max(), cell.best_fitness.mean());
    EXPECT_LE(cell.worst_loss_db.max(), 0.0);  // loss in dB is <= 0
    EXPECT_EQ(cell.evaluations.mean(), 50.0);  // budget is exact for rs
  }
  EXPECT_EQ(report.to_table().row_count(), report.cells.size());
}

TEST(Aggregate, MergeOfShardsEqualsTheWholeGrid) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  // Shard by parity of the grid index, aggregate separately, merge.
  std::vector<CellResult> even, odd;
  for (const auto& result : results)
    (result.cell.index % 2 == 0 ? even : odd).push_back(result);
  auto merged = SweepReport::build(spec, even);
  merged.merge(SweepReport::build(spec, odd));
  const auto whole = SweepReport::build(spec, results);
  ASSERT_EQ(merged.cells.size(), whole.cells.size());
  EXPECT_EQ(merged.run_count, whole.run_count);
  for (const auto& want : whole.cells) {
    const AggregateCell* got = nullptr;
    for (const auto& cell : merged.cells)
      if (cell.workload == want.workload && cell.topology == want.topology &&
          cell.goal == want.goal && cell.optimizer == want.optimizer &&
          cell.budget == want.budget)
        got = &cell;
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->best_fitness.count(), want.best_fitness.count());
    EXPECT_NEAR(got->best_fitness.mean(), want.best_fitness.mean(), 1e-12);
    EXPECT_NEAR(got->best_fitness.stddev(), want.best_fitness.stddev(),
                1e-9);
    EXPECT_EQ(got->worst_loss_db.min(), want.worst_loss_db.min());
    EXPECT_EQ(got->worst_loss_db.max(), want.worst_loss_db.max());
  }
}

TEST(Aggregate, AddRejectsForeignCellsAndCsvHasHeaderAndRows) {
  const auto spec = tiny_spec();
  const auto results = BatchEngine({.workers = 1}).run(spec);
  auto report = SweepReport::build(spec, results);
  AggregateCell& cell = report.cells.front();
  CellResult foreign = results.back();
  EXPECT_THROW(cell.add(foreign), InvalidArgument);
  std::ostringstream csv;
  report.write_csv(csv);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(csv.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + report.cells.size());
}

// --- the determinism property ---------------------------------------------
//
// For random problems, BatchEngine with 1, 2 and 8 workers produces
// bit-identical RunResults to sequential Engine::compare with the same
// seeds. (Timing fields are the only allowed difference.)

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_TRUE(a.search.best == b.search.best);
  EXPECT_EQ(a.search.best_fitness, b.search.best_fitness);  // bitwise
  EXPECT_EQ(a.search.evaluations, b.search.evaluations);
  EXPECT_EQ(a.search.iterations, b.search.iterations);
  ASSERT_EQ(a.search.trace.size(), b.search.trace.size());
  for (std::size_t i = 0; i < a.search.trace.size(); ++i) {
    EXPECT_EQ(a.search.trace[i].evaluation, b.search.trace[i].evaluation);
    EXPECT_EQ(a.search.trace[i].fitness, b.search.trace[i].fitness);
  }
  EXPECT_EQ(a.best_evaluation.worst_loss_db, b.best_evaluation.worst_loss_db);
  EXPECT_EQ(a.best_evaluation.worst_snr_db, b.best_evaluation.worst_snr_db);
}

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, BatchEngineMatchesSequentialCompareBitForBit) {
  const auto problem_seed = GetParam();
  SweepSpec spec;
  spec.add_workload("random", random_cg({.tasks = 9,
                                         .avg_out_degree = 1.7,
                                         .min_bandwidth = 8,
                                         .max_bandwidth = 128,
                                         .seed = problem_seed,
                                         .acyclic = false}))
      .add_topology(TopologyKind::Mesh, 4)
      .add_goal(OptimizationGoal::Snr)
      .add_optimizers({"rs", "ga", "rpbla", "sa"})
      .add_budget(400)
      .add_seed(problem_seed)
      .add_seed(problem_seed + 17);

  // Sequential reference: the engine's fair-comparison protocol.
  const auto problem = make_problem(spec, expand(spec)[0]);
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 400;
  std::vector<std::vector<RunResult>> reference;  // [seed][optimizer]
  for (const auto seed : spec.seeds)
    reference.push_back(engine.compare(spec.optimizers, budget, seed));

  for (const std::size_t workers : {1u, 2u, 8u}) {
    const auto results = BatchEngine({.workers = workers}).run(spec);
    ASSERT_EQ(results.size(), spec.optimizers.size() * spec.seeds.size());
    for (std::size_t o = 0; o < spec.optimizers.size(); ++o)
      for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
        const auto& got =
            results[grid_index(spec, 0, 0, 0, o, 0, s)];
        EXPECT_EQ(got.seed, spec.seeds[s]);
        expect_identical(got.run, reference[s][o]);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, DeterminismSweep,
                         ::testing::Values(3u, 29u, 404u));

TEST(Determinism, EvaluatorOptionsCannotChangeBatchResults) {
  // The evaluation memo and the incremental move path only change the
  // physical cost of a cell, never its outcome: a grid run with the
  // memo disabled and the move API on the whole-mapping fallback is
  // bit-identical to the default (LRU + incremental kernel) run.
  SweepSpec spec;
  spec.add_workload("random", random_cg({.tasks = 8,
                                         .avg_out_degree = 1.6,
                                         .seed = 12,
                                         .acyclic = false}))
      .add_topology(TopologyKind::Mesh, 3)
      .add_goal(OptimizationGoal::InsertionLoss)
      .add_optimizers({"rs", "sa", "tabu", "rpbla"})
      .add_budget(300)
      .add_seed(7);
  const auto defaults = BatchEngine({.workers = 2}).run(spec);
  const auto plain =
      BatchEngine({.workers = 2,
                   .evaluator = {.cache_capacity = 0, .incremental = false}})
          .run(spec);
  ASSERT_EQ(defaults.size(), plain.size());
  for (std::size_t i = 0; i < defaults.size(); ++i)
    expect_identical(defaults[i].run, plain[i].run);
}

TEST(Determinism, ParallelCompareMatchesSequentialCompare) {
  auto cg = random_cg({.tasks = 8, .avg_out_degree = 1.5, .seed = 5});
  MappingProblem problem(std::move(cg),
                         make_network(TopologyKind::Torus, 3, "crux"),
                         make_objective(OptimizationGoal::InsertionLoss));
  const Engine engine(problem);
  OptimizerBudget budget;
  budget.max_evaluations = 300;
  const std::vector<std::string> names{"rs", "ga", "rpbla", "tabu"};
  const auto sequential = engine.compare(names, budget, 99);
  const auto pooled = engine.compare(names, budget, 99, 4);
  const auto batch =
      BatchEngine({.workers = 4}).compare(problem, names, budget, 99);
  ASSERT_EQ(pooled.size(), sequential.size());
  ASSERT_EQ(batch.size(), sequential.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    expect_identical(pooled[i], sequential[i]);
    expect_identical(batch[i], sequential[i]);
  }
}

}  // namespace
}  // namespace phonoc
