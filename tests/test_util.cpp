// Unit tests for the util layer: units, rng, stats, strings, cli.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <set>
#include <tuple>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/units.hpp"

namespace phonoc {
namespace {

// --- units ----------------------------------------------------------------

TEST(Units, DbToLinearKnownValues) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(-3.0103), 0.5, 1e-4);
  EXPECT_NEAR(db_to_linear(-10.0), 0.1, 1e-12);
  EXPECT_NEAR(db_to_linear(-20.0), 0.01, 1e-12);
  EXPECT_NEAR(db_to_linear(-40.0), 1e-4, 1e-15);
}

TEST(Units, LinearToDbRoundTrip) {
  for (const double db : {-0.005, -0.04, -0.5, -3.0, -20.0, -40.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Units, LinearToDbNonPositiveIsMinusInfinity) {
  EXPECT_EQ(linear_to_db(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(linear_to_db(-1.0), -std::numeric_limits<double>::infinity());
}

TEST(Units, SnrDb) {
  EXPECT_NEAR(snr_db(1.0, 0.01), 20.0, 1e-9);
  EXPECT_NEAR(snr_db(0.5, 0.5), 0.0, 1e-9);
  EXPECT_EQ(snr_db(1.0, 0.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(snr_db(0.0, 0.1), -std::numeric_limits<double>::infinity());
}

TEST(Units, MmToCm) {
  EXPECT_DOUBLE_EQ(mm_to_cm(25.0), 2.5);
  EXPECT_DOUBLE_EQ(mm_to_cm(0.0), 0.0);
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_in(7, 7), 7);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // LLN sanity
}

TEST(Rng, NextBoolEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // The child must not replay the parent's sequence.
  Rng parent_copy(42);
  (void)parent_copy();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (child() == parent_copy()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitMixNonZero) {
  std::uint64_t s = 0;
  EXPECT_NE(splitmix64(s), 0u);
}

// --- stats -------------------------------------------------------------------

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (const auto x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 5.0;
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  double var = 0;
  for (const auto x : xs) var += (x - mean) * (x - mean);
  var /= 4.0;
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEmptyIntoEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStats, OneSidedMergesAreExact) {
  RunningStats filled;
  filled.add(-3.0);
  filled.add(7.5);
  filled.add(1.25);

  // empty.merge(filled) adopts the filled side bit-for-bit.
  RunningStats empty_into;
  empty_into.merge(filled);
  EXPECT_EQ(empty_into.count(), filled.count());
  EXPECT_EQ(empty_into.mean(), filled.mean());
  EXPECT_EQ(empty_into.variance(), filled.variance());
  EXPECT_EQ(empty_into.min(), filled.min());
  EXPECT_EQ(empty_into.max(), filled.max());

  // filled.merge(empty) is a no-op — in particular the sentinel 0s of
  // the empty side must not leak into min/max or the mean.
  RunningStats into_filled = filled;
  into_filled.merge(RunningStats{});
  EXPECT_EQ(into_filled.count(), filled.count());
  EXPECT_EQ(into_filled.mean(), filled.mean());
  EXPECT_EQ(into_filled.variance(), filled.variance());
  EXPECT_EQ(into_filled.min(), -3.0);
  EXPECT_EQ(into_filled.max(), 7.5);
}

TEST(Histogram, BinningAndProbability) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.count(b), 1u);
    EXPECT_NEAR(h.probability(b), 0.1, 1e-12);
  }
  EXPECT_NEAR(h.cumulative(4), 0.5, 1e-12);
  EXPECT_NEAR(h.cumulative(9), 1.0, 1e-12);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(1.0);  // hi edge counts as overflow (half-open range)
  h.add(0.0);  // lo edge is inside
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, HiBoundaryIsExclusiveEvenForNonRepresentableWidths) {
  // 0.3 and 0.1 are not exactly representable: exactly the situation
  // where value >= hi_ and the bin arithmetic can disagree.
  Histogram h(0.0, 0.3, 3);
  h.add(0.3);  // == hi: overflow, never bin 2
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(2), 0u);
  h.add(std::nextafter(0.3, 0.0));  // just below hi: last bin
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, FpEdgeGuardClampsIndexIntoTheLastBin) {
  // For values just below hi, (value - lo) / bin_width can round up to
  // exactly `bins`; the guard must clamp the index instead of writing
  // one past the counts array. Sweep many awkward ranges so at least
  // some hit the rounding case; all must land in the last bin.
  for (const auto [lo, hi, bins] : {std::tuple{0.0, 0.7, std::size_t{7}},
                                    std::tuple{-1.1, 1.3, std::size_t{49}},
                                    std::tuple{0.0, 1.0, std::size_t{3}},
                                    std::tuple{2.5, 9.1, std::size_t{11}}}) {
    Histogram h(lo, hi, bins);
    const double below = std::nextafter(hi, lo);
    h.add(below);
    EXPECT_EQ(h.overflow(), 0u) << lo << ' ' << hi << ' ' << bins;
    EXPECT_EQ(h.count(bins - 1), 1u) << lo << ' ' << hi << ' ' << bins;
    EXPECT_EQ(h.total(), 1u);
  }
}

TEST(Histogram, BinEdges) {
  Histogram h(-4.0, 0.0, 8);
  EXPECT_DOUBLE_EQ(h.bin_low(0), -4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(7), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), -3.75);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, MergeRejectsMismatchedBinnings) {
  Histogram base(0.0, 10.0, 10);
  EXPECT_THROW(base.merge(Histogram(0.0, 10.0, 20)), InvalidArgument);
  EXPECT_THROW(base.merge(Histogram(0.0, 9.0, 10)), InvalidArgument);
  EXPECT_THROW(base.merge(Histogram(-1.0, 10.0, 10)), InvalidArgument);
  // A failed merge must leave the target untouched.
  EXPECT_EQ(base.total(), 0u);
}

TEST(Histogram, MergeOfSplitsEqualsSinglePassBitExactly) {
  // The same value stream, accumulated in one pass and in three
  // interleaved shards, must agree bin for bin — including the
  // underflow/overflow counters the shards hit at different rates.
  Histogram whole(-2.0, 2.0, 16);
  Histogram shards[3]{{-2.0, 2.0, 16}, {-2.0, 2.0, 16}, {-2.0, 2.0, 16}};
  std::uint64_t state = 99;
  for (int i = 0; i < 3000; ++i) {
    // Cheap deterministic values spanning [-3, 3): both tails overflow.
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double value =
        static_cast<double>(state >> 11) /
            static_cast<double>(1ull << 53) * 6.0 - 3.0;
    whole.add(value);
    shards[i % 3].add(value);
  }
  Histogram merged = shards[0];
  merged.merge(shards[1]);
  merged.merge(shards[2]);
  EXPECT_EQ(merged.total(), whole.total());
  EXPECT_EQ(merged.underflow(), whole.underflow());
  EXPECT_EQ(merged.overflow(), whole.overflow());
  EXPECT_GT(whole.underflow(), 0u);  // the tails were really exercised
  EXPECT_GT(whole.overflow(), 0u);
  for (std::size_t b = 0; b < whole.bins(); ++b)
    EXPECT_EQ(merged.count(b), whole.count(b)) << "bin " << b;
}

TEST(Histogram, FromPartsRoundTripsAccumulatedState) {
  Histogram h(0.0, 4.0, 4);
  for (const double v : {-1.0, 0.5, 1.5, 1.6, 3.9, 7.0, 9.0}) h.add(v);
  std::vector<std::size_t> counts;
  for (std::size_t b = 0; b < h.bins(); ++b) counts.push_back(h.count(b));
  const auto restored = Histogram::from_parts(h.lo(), h.hi(), counts,
                                              h.underflow(), h.overflow());
  EXPECT_EQ(restored.total(), h.total());
  EXPECT_EQ(restored.underflow(), h.underflow());
  EXPECT_EQ(restored.overflow(), h.overflow());
  for (std::size_t b = 0; b < h.bins(); ++b)
    EXPECT_EQ(restored.count(b), h.count(b));
  EXPECT_THROW((void)Histogram::from_parts(0.0, 1.0, {}, 0, 0),
               InvalidArgument);
}

TEST(Histogram, QuantileInterpolatesWithinTheCrossingBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);  // one count per bin
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);   // crosses at the bin-5 boundary
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);  // halfway into bin 2
  EXPECT_DOUBLE_EQ(h.quantile(0.05), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  // Mass outside the range resolves to the range edges (the histogram
  // cannot know those sample values).
  Histogram tails(0.0, 1.0, 2);
  tails.add(-5.0);
  tails.add(0.25);
  tails.add(9.0);
  EXPECT_DOUBLE_EQ(tails.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tails.quantile(1.0), 1.0);
  // Empty histogram: a defined 0, not UB.
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 4).quantile(0.5), 0.0);
}

TEST(RunningStats, FromPartsRoundTripsTheAccumulator) {
  RunningStats original;
  for (const double v : {3.25, -1.5, 0.75, 12.0, -0.125}) original.add(v);
  const auto restored = RunningStats::from_parts(
      original.count(), original.mean(), original.sum_squared_deviations(),
      original.min(), original.max());
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.mean(), original.mean());  // bitwise
  EXPECT_EQ(restored.variance(), original.variance());
  EXPECT_EQ(restored.min(), original.min());
  EXPECT_EQ(restored.max(), original.max());
  // Merging a restored shard behaves exactly like merging the original.
  RunningStats base_a, base_b;
  base_a.add(7.0);
  base_b.add(7.0);
  base_a.merge(original);
  base_b.merge(restored);
  EXPECT_EQ(base_a.mean(), base_b.mean());
  EXPECT_EQ(base_a.sum_squared_deviations(), base_b.sum_squared_deviations());
}

TEST(Histogram, AsciiChartHasOneRowPerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  const auto chart = h.ascii_chart(10);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
}

TEST(Quantile, InterpolatesSorted) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

// --- strings -----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  alpha\tbeta  gamma\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[2], "gamma");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("-0.274"), -0.274);
  EXPECT_DOUBLE_EQ(parse_double("  42 "), 42.0);
  EXPECT_THROW((void)parse_double("abc"), ParseError);
  EXPECT_THROW((void)parse_double("1.5x"), ParseError);
  EXPECT_THROW((void)parse_double(""), ParseError);
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("123"), 123);
  EXPECT_EQ(parse_long("-7"), -7);
  EXPECT_THROW((void)parse_long("1.5"), ParseError);
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(-1.525, 2), "-1.52");
  EXPECT_EQ(format_fixed(3.0, 1), "3.0");
}

// --- cli ----------------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  // Note: a bare `--flag` followed by a non-option token consumes that
  // token as its value, so positional args must precede bare flags.
  const char* argv[] = {"prog",   "--alpha=1", "--beta", "two",
                        "pos1",   "--flag",    "--gamma=x=y"};
  CliOptions cli(7, argv);
  EXPECT_EQ(cli.get_or("alpha", ""), "1");
  EXPECT_EQ(cli.get_or("beta", ""), "two");
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_or("gamma", ""), "x=y");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, TypedAccessorsAndFallbacks) {
  const char* argv[] = {"prog", "--n=42", "--x=2.5", "--no=false"};
  CliOptions cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_FALSE(cli.get_bool("no", true));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("missing"));
}

// --- timer / error -------------------------------------------------------------

TEST(Timer, Monotonic) {
  Timer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(Error, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "the message");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_STREQ(e.what(), "the message");
  }
  EXPECT_THROW(require_model(false, "m"), ModelError);
}

TEST(Error, ParseErrorCarriesLine) {
  const ParseError e("bad", 12);
  EXPECT_EQ(e.line(), 12);
  EXPECT_NE(std::string(e.what()).find("line 12"), std::string::npos);
}

}  // namespace
}  // namespace phonoc
