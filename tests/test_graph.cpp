// Unit tests for the graph layer: Digraph, algorithms, CommGraph.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/comm_graph.hpp"
#include "graph/digraph.hpp"
#include "util/error.hpp"

namespace phonoc {
namespace {

Digraph<int> diamond() {
  Digraph<int> g(4);
  g.add_edge(0, 1, 10);
  g.add_edge(0, 2, 20);
  g.add_edge(1, 3, 30);
  g.add_edge(2, 3, 40);
  return g;
}

TEST(Digraph, BasicConstruction) {
  auto g = diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.edge(0).data, 10);
  EXPECT_EQ(g.edge(0).src, 0u);
  EXPECT_EQ(g.edge(0).dst, 1u);
}

TEST(Digraph, AddNodeGrows) {
  Digraph<int> g;
  EXPECT_EQ(g.node_count(), 0u);
  const auto n = g.add_node();
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(Digraph, FindEdge) {
  auto g = diamond();
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(1, 0), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(Digraph, OutOfRangeThrows) {
  Digraph<int> g(2);
  EXPECT_THROW(g.add_edge(0, 5), InvalidArgument);
  EXPECT_THROW((void)g.edge(99), InvalidArgument);
  EXPECT_THROW((void)g.out_edges(7), InvalidArgument);
}

TEST(Algorithms, BfsDistances) {
  auto g = diamond();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  const auto from3 = bfs_distances(g, 3);
  EXPECT_EQ(from3[0], kUnreachable);  // directed: no way back
}

TEST(Algorithms, WeakConnectivity) {
  auto g = diamond();
  EXPECT_TRUE(is_weakly_connected(g));
  Digraph<int> two(2);  // no edges
  EXPECT_FALSE(is_weakly_connected(two));
  Digraph<int> empty;
  EXPECT_TRUE(is_weakly_connected(empty));
}

TEST(Algorithms, TopologicalOrder) {
  auto g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Algorithms, CycleDetection) {
  auto g = diamond();
  EXPECT_FALSE(has_cycle(g));
  g.add_edge(3, 0);
  EXPECT_TRUE(has_cycle(g));
  EXPECT_FALSE(topological_order(g).has_value());
}

TEST(Algorithms, Diameter) {
  auto g = diamond();
  EXPECT_EQ(diameter(g), 2u);
  Digraph<int> chain(5);
  for (NodeId i = 0; i + 1 < 5; ++i) chain.add_edge(i, i + 1);
  EXPECT_EQ(diameter(chain), 4u);
}

// --- CommGraph -----------------------------------------------------------------

TEST(CommGraph, BuildAndQuery) {
  CommGraph cg("app");
  const auto a = cg.add_task("a");
  const auto b = cg.add_task("b");
  cg.add_task("c");
  cg.add_communication(a, b, 64.0);
  cg.add_communication("b", "c", 32.0);
  EXPECT_EQ(cg.task_count(), 3u);
  EXPECT_EQ(cg.communication_count(), 2u);
  EXPECT_EQ(cg.task_name(a), "a");
  EXPECT_EQ(cg.find_task("c"), 2u);
  EXPECT_EQ(cg.find_task("zz"), kInvalidNode);
  EXPECT_DOUBLE_EQ(cg.total_bandwidth(), 96.0);
  EXPECT_EQ(cg.max_degree(), 2u);  // b has in+out
  EXPECT_NO_THROW(cg.validate());
}

TEST(CommGraph, EdgesViewPreservesOrder) {
  CommGraph cg;
  cg.add_task("x");
  cg.add_task("y");
  cg.add_task("z");
  cg.add_communication("x", "y", 1.0);
  cg.add_communication("y", "z", 2.0);
  const auto edges = cg.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].src, 0u);
  EXPECT_DOUBLE_EQ(edges[1].bandwidth_mbps, 2.0);
}

TEST(CommGraph, RejectsDuplicateTaskNames) {
  CommGraph cg;
  cg.add_task("t");
  EXPECT_THROW(cg.add_task("t"), InvalidArgument);
  EXPECT_THROW(cg.add_task(""), InvalidArgument);
}

TEST(CommGraph, RejectsSelfLoop) {
  CommGraph cg;
  const auto t = cg.add_task("t");
  EXPECT_THROW(cg.add_communication(t, t, 1.0), InvalidArgument);
}

TEST(CommGraph, RejectsDuplicateEdge) {
  CommGraph cg;
  cg.add_task("a");
  cg.add_task("b");
  cg.add_communication("a", "b", 1.0);
  EXPECT_THROW(cg.add_communication("a", "b", 2.0), InvalidArgument);
  // The reverse direction is a distinct communication.
  EXPECT_NO_THROW(cg.add_communication("b", "a", 2.0));
}

TEST(CommGraph, RejectsUnknownEndpointsAndNegativeBandwidth) {
  CommGraph cg;
  cg.add_task("a");
  cg.add_task("b");
  EXPECT_THROW(cg.add_communication("a", "nope", 1.0), InvalidArgument);
  EXPECT_THROW(cg.add_communication(0u, 1u, -1.0), InvalidArgument);
  EXPECT_THROW(cg.add_communication(0u, 9u, 1.0), InvalidArgument);
}

TEST(CommGraph, ValidateRequiresATask) {
  const CommGraph cg;
  EXPECT_THROW(cg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace phonoc
