// Unit tests for the router substrate: netlist construction, signal
// tracing, derived loss/crosstalk/conflict matrices, and the built-in
// router microarchitectures.

#include <gtest/gtest.h>

#include "photonics/parameters.hpp"
#include "router/crossbar.hpp"
#include "router/crux.hpp"
#include "router/parallel_router.hpp"
#include "router/ports.hpp"
#include "router/registry.hpp"
#include "router/router_model.hpp"
#include "router/tracer.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {
namespace {

PhysicalParameters paper() { return PhysicalParameters::paper_defaults(); }

RouterModel crux_model() { return RouterModel(build_crux(), paper()); }

// --- ports -----------------------------------------------------------------

TEST(Ports, NamesAndOpposites) {
  EXPECT_EQ(standard_port_name(kPortLocal), "L");
  EXPECT_EQ(standard_port_name(kPortWest), "W");
  EXPECT_EQ(standard_port_name(7), "P7");
  EXPECT_EQ(opposite_port(kPortNorth), kPortSouth);
  EXPECT_EQ(opposite_port(kPortEast), kPortWest);
  EXPECT_EQ(opposite_port(kPortLocal), kPortLocal);
  EXPECT_THROW((void)opposite_port(9), InvalidArgument);
}

// --- netlist construction rules ----------------------------------------------

TEST(Netlist, RejectsDoubleWiring) {
  RouterNetlist n("test", {"in", "out"});
  const auto a = n.add_element(ElementKind::Crossing, "a");
  const auto b = n.add_element(ElementKind::Crossing, "b");
  n.wire(a, Rail::A, b, Rail::A);
  EXPECT_THROW(n.wire(a, Rail::A, b, Rail::B), InvalidArgument);  // out pin
  EXPECT_THROW(n.wire(b, Rail::B, b, Rail::A), InvalidArgument);  // in pin fed
}

TEST(Netlist, RejectsRinglessRingDeclaration) {
  RouterNetlist n("test", {"p0", "p1"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  EXPECT_THROW(n.add_connection(0, 1, {x}), InvalidArgument);
}

TEST(Netlist, RejectsDuplicateConnection) {
  RouterNetlist n("test", {"p0", "p1"});
  const auto e = n.add_element(ElementKind::Ppse, "e");
  n.wire_input(0, e, Rail::A);
  n.wire_output(e, Rail::A, 1);
  n.add_connection(0, 1, {});
  EXPECT_THROW(n.add_connection(0, 1, {e}), InvalidArgument);
}

TEST(Netlist, CountsRingsAndCrossings) {
  RouterNetlist n("test", {"p"});
  n.add_element(ElementKind::Crossing, "x");
  n.add_element(ElementKind::Ppse, "p");
  n.add_element(ElementKind::Cpse, "c");
  EXPECT_EQ(n.ring_count(), 2u);      // ppse + cpse
  EXPECT_EQ(n.crossing_count(), 2u);  // crossing + cpse
}

TEST(Netlist, ValidateCatchesUnwiredUsedPort) {
  RouterNetlist n("test", {"p0", "p1"});
  const auto e = n.add_element(ElementKind::Ppse, "e");
  n.wire_output(e, Rail::A, 1);
  n.add_connection(0, 1, {});
  EXPECT_THROW(n.validate(), ModelError);  // input port 0 not wired
}

// --- tracing a hand-built two-element netlist ----------------------------------

TEST(Tracer, HandBuiltPathLoss) {
  // in -> crossing -> ppse -> out. OFF: loss = Lc + Lp,off = -0.045 dB.
  RouterNetlist n("tiny", {"in", "out"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  const auto p = n.add_element(ElementKind::Ppse, "p");
  n.wire_input(0, x, Rail::A);
  n.wire(x, Rail::A, p, Rail::A);
  n.wire_output(p, Rail::A, 1);
  const auto conn = n.add_connection(0, 1, {});
  const auto lin = LinearParameters::from(paper());
  const auto trace = trace_connection(n, n.connections()[conn], lin);
  ASSERT_EQ(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps[0].element, x);
  EXPECT_EQ(trace.steps[1].element, p);
  EXPECT_NEAR(linear_to_db(trace.gain), -0.04 - 0.005, 1e-9);
}

TEST(Tracer, InternalWaveguideLengthContributes) {
  RouterNetlist n("tiny", {"in", "out"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  n.wire_input(0, x, Rail::A, /*length_cm=*/1.0);
  n.wire_output(x, Rail::A, 1, /*length_cm=*/1.0);
  n.add_connection(0, 1, {});
  const auto lin = LinearParameters::from(paper());
  const auto trace = trace_connection(n, n.connections()[0], lin);
  EXPECT_DOUBLE_EQ(trace.internal_length_cm, 2.0);
  EXPECT_NEAR(linear_to_db(trace.gain), -0.04 - 2 * 0.274, 1e-9);
}

TEST(Tracer, DetectsMisdeclaredOutputPort) {
  RouterNetlist n("bad", {"in", "out", "other"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  n.wire_input(0, x, Rail::A);
  n.wire_output(x, Rail::A, 2);        // actually reaches port 2
  n.add_connection(0, 1, {});          // but claims port 1
  const auto lin = LinearParameters::from(paper());
  EXPECT_THROW(trace_connection(n, n.connections()[0], lin), ModelError);
}

TEST(Tracer, DetectsTerminatedPath) {
  RouterNetlist n("dead", {"in", "out"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  n.wire_input(0, x, Rail::A);
  // rail A output terminated (never wired)
  n.add_connection(0, 1, {});
  const auto lin = LinearParameters::from(paper());
  EXPECT_THROW(trace_connection(n, n.connections()[0], lin), ModelError);
}

TEST(Tracer, SingleFanInMakesEveryWalkFinite) {
  // Each input pin accepts exactly one feeder, so a signal walk can
  // never revisit a pin: infinite loops are structurally impossible and
  // the tracer's step limit is pure defense in depth. A long chain of
  // elements traces with exactly one step per element.
  constexpr std::size_t kChain = 64;
  RouterNetlist n("chain", {"in", "out"});
  std::vector<ElementId> elems;
  for (std::size_t i = 0; i < kChain; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    elems.push_back(n.add_element(ElementKind::Ppse, std::move(name)));
  }
  n.wire_input(0, elems.front(), Rail::A);
  for (std::size_t i = 0; i + 1 < kChain; ++i)
    n.wire(elems[i], Rail::A, elems[i + 1], Rail::A);
  n.wire_output(elems.back(), Rail::A, 1);
  n.add_connection(0, 1, {});
  const auto lin = LinearParameters::from(PhysicalParameters{});
  const auto trace = trace_connection(n, n.connections()[0], lin);
  EXPECT_EQ(trace.steps.size(), kChain);
  EXPECT_NEAR(linear_to_db(trace.gain), -0.005 * kChain, 1e-9);
  // And closing a would-be loop is rejected at wiring time.
  RouterNetlist loop("loop", {"in"});
  const auto a = loop.add_element(ElementKind::Crossing, "a");
  loop.wire_input(0, a, Rail::A);
  EXPECT_THROW(loop.wire(a, Rail::A, a, Rail::A), InvalidArgument);
}

TEST(Tracer, StrayPropagationReportsTermination) {
  // A leak landing on a terminated guide is absorbed, not delivered.
  RouterNetlist n("tiny", {"in", "out"});
  const auto x = n.add_element(ElementKind::Crossing, "x");
  n.wire_input(0, x, Rail::A);
  n.wire_output(x, Rail::A, 1);
  // rail B is entirely unwired: its output pin terminates.
  const auto lin = LinearParameters::from(PhysicalParameters{});
  const RingFlags none(n.element_count(), 0);
  const auto stray = propagate_from_pin(n, x, Rail::B, none, lin);
  EXPECT_FALSE(stray.reached_output);
}

TEST(Crux, TraceStepCountsMatchTheLayout) {
  const auto model = crux_model();
  const auto steps = [&](PortId i, PortId o) {
    return model
        .trace(static_cast<std::size_t>(model.connection_index(i, o)))
        .steps.size();
  };
  EXPECT_EQ(steps(kPortWest, kPortEast), 4u);    // LE WN WS WL
  EXPECT_EQ(steps(kPortSouth, kPortLocal), 2u);  // SL XLL
  EXPECT_EQ(steps(kPortLocal, kPortSouth), 8u);  // the longest service
}

TEST(Crux, WorstConnectionIsInjectSouth) {
  // L->S traverses the whole injection guide plus most of the N->S
  // guide: 0.04 + 5*0.045 + 0.5 + 0.005 = 0.77 dB.
  const auto model = crux_model();
  EXPECT_NEAR(model.worst_connection_loss_db(), -0.77, 1e-9);
  const auto ls = static_cast<std::size_t>(
      model.connection_index(kPortLocal, kPortSouth));
  EXPECT_NEAR(model.connection_loss_db(ls), -0.77, 1e-9);
}

TEST(Tracer, RingFlagsHelpers) {
  RouterNetlist n("f", {"p"});
  n.add_element(ElementKind::Ppse, "a");
  n.add_element(ElementKind::Ppse, "b");
  const auto fa = make_ring_flags(n, {0});
  const auto fb = make_ring_flags(n, {1});
  const auto u = union_flags(fa, fb);
  EXPECT_EQ(u[0], 1);
  EXPECT_EQ(u[1], 1);
  EXPECT_EQ(fa[1], 0);
}

// --- Crux structural reconstruction properties -----------------------------------

TEST(Crux, StructuralProperties) {
  const auto netlist = build_crux();
  EXPECT_EQ(netlist.name(), "crux");
  EXPECT_EQ(netlist.port_count(), 5u);
  EXPECT_EQ(netlist.ring_count(), 12u);        // published ring count
  EXPECT_EQ(netlist.connections().size(), 16u); // XY-legal set
  EXPECT_EQ(netlist.element_count(), 13u);     // 12 ring sites + XLL
}

TEST(Crux, SupportsExactlyTheXyLegalSet) {
  const auto model = crux_model();
  for (PortId in = 0; in < 5; ++in) {
    for (PortId out = 0; out < 5; ++out) {
      const bool supported = model.connection_index(in, out) >= 0;
      EXPECT_EQ(supported, xy_legal_connection(in, out))
          << standard_port_name(in) << "->" << standard_port_name(out);
    }
  }
}

TEST(Crux, StraightPathsAreRingFree) {
  const auto model = crux_model();
  const std::pair<PortId, PortId> straights[] = {
      {kPortWest, kPortEast},
      {kPortEast, kPortWest},
      {kPortNorth, kPortSouth},
      {kPortSouth, kPortNorth}};
  for (const auto& [in, out] : straights) {
    const auto idx = model.connection_index(in, out);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(model.connection(static_cast<std::size_t>(idx)).rings.empty());
  }
}

TEST(Crux, KnownConnectionLosses) {
  const auto model = crux_model();
  const auto loss = [&](PortId i, PortId o) {
    return model.connection_loss_db(
        static_cast<std::size_t>(model.connection_index(i, o)));
  };
  // W->E straight: four OFF CPSEs = 4 * -0.045 dB.
  EXPECT_NEAR(loss(kPortWest, kPortEast), -0.18, 1e-9);
  EXPECT_NEAR(loss(kPortEast, kPortWest), -0.18, 1e-9);
  // N->S: three OFF CPSEs + one OFF PPSE = -0.135 - 0.005.
  EXPECT_NEAR(loss(kPortNorth, kPortSouth), -0.14, 1e-9);
  // S->L: one ON CPSE + one crossing = -0.5 - 0.04.
  EXPECT_NEAR(loss(kPortSouth, kPortLocal), -0.54, 1e-9);
  // L->E: crossing + ON CPSE + three OFF CPSEs.
  EXPECT_NEAR(loss(kPortLocal, kPortEast), -0.04 - 0.5 - 3 * 0.045, 1e-9);
}

TEST(Crux, EveryConnectionUsesAtMostOneRing) {
  const auto netlist = build_crux();
  for (const auto& conn : netlist.connections())
    EXPECT_LE(conn.rings.size(), 1u);
}

TEST(Crux, PortConflictsDetected) {
  const auto model = crux_model();
  const auto idx = [&](PortId i, PortId o) {
    return static_cast<std::size_t>(model.connection_index(i, o));
  };
  // Same output port E: L->E vs W->E.
  EXPECT_TRUE(model.conflicts(idx(kPortLocal, kPortEast),
                              idx(kPortWest, kPortEast)));
  // Same input port W: W->E vs W->N.
  EXPECT_TRUE(
      model.conflicts(idx(kPortWest, kPortEast), idx(kPortWest, kPortNorth)));
}

TEST(Crux, RingStateConflictDetected) {
  const auto model = crux_model();
  const auto idx = [&](PortId i, PortId o) {
    return static_cast<std::size_t>(model.connection_index(i, o));
  };
  // L->E turns the LE ring ON; that ring sits on the W->E..W->L guide,
  // so any W-input connection is diverted: structural conflict.
  EXPECT_TRUE(model.conflicts(idx(kPortWest, kPortNorth),
                              idx(kPortLocal, kPortEast)));
  EXPECT_TRUE(model.conflicts(idx(kPortLocal, kPortEast),
                              idx(kPortWest, kPortNorth)));
}

TEST(Crux, InjectionEjectionInteractAtTheCrossingFloor) {
  // The XLL crossing couples concurrent injection and ejection at the
  // -40 dB crossing-crosstalk coefficient: this is the SNR plateau
  // mechanism discussed in DESIGN.md.
  const auto model = crux_model();
  const auto le = static_cast<std::size_t>(
      model.connection_index(kPortLocal, kPortEast));
  const auto sl = static_cast<std::size_t>(
      model.connection_index(kPortSouth, kPortLocal));
  EXPECT_FALSE(model.conflicts(le, sl));
  EXPECT_NEAR(model.crosstalk_gain(le, sl, ModelFidelity::Simplified), 1e-4,
              1e-10);
  EXPECT_NEAR(model.crosstalk_gain(sl, le, ModelFidelity::Simplified), 1e-4,
              1e-10);
}

TEST(Crux, StraightVictimReceivesPseLeak) {
  // W->E passes the OFF WL ring; an N->L attacker traverses WL on the
  // other rail and leaks (Kp,off + Kc) into the victim's direction.
  const auto model = crux_model();
  const auto we = static_cast<std::size_t>(
      model.connection_index(kPortWest, kPortEast));
  const auto nl = static_cast<std::size_t>(
      model.connection_index(kPortNorth, kPortLocal));
  EXPECT_FALSE(model.conflicts(we, nl));
  EXPECT_NEAR(model.crosstalk_gain(we, nl, ModelFidelity::Simplified),
              0.01 + 1e-4, 1e-9);
}

TEST(Crux, FullFidelityNeverExceedsSimplified) {
  const auto model = crux_model();
  const auto n = model.connection_count();
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < n; ++a) {
      EXPECT_LE(model.crosstalk_gain(v, a, ModelFidelity::Full),
                model.crosstalk_gain(v, a, ModelFidelity::Simplified) + 1e-15);
    }
  }
}

// --- crossbars ------------------------------------------------------------------

TEST(Crossbar, FullStructuralProperties) {
  const auto netlist = build_crossbar();
  EXPECT_EQ(netlist.port_count(), 5u);
  EXPECT_EQ(netlist.element_count(), 25u);
  EXPECT_EQ(netlist.ring_count(), 20u);          // no U-turns
  EXPECT_EQ(netlist.connections().size(), 20u);
}

TEST(Crossbar, XyRestrictedVariant) {
  CrossbarOptions options;
  options.xy_legal_only = true;
  const auto netlist = build_crossbar(options);
  EXPECT_EQ(netlist.name(), "xy_crossbar");
  EXPECT_EQ(netlist.ring_count(), 16u);
  EXPECT_EQ(netlist.connections().size(), 16u);
}

TEST(Crossbar, ConnectionLossFollowsMatrixPosition) {
  const RouterModel model(build_crossbar(), paper());
  // L(row 0) -> L column is a U-turn: unsupported.
  EXPECT_LT(model.connection_index(kPortLocal, kPortLocal), 0);
  // W (row 4) -> L (col 0): no row elements before col 0, ON CPSE,
  // then 0 rows below row 4: loss = Lc,on only.
  const auto wl = model.connection_index(kPortWest, kPortLocal);
  ASSERT_GE(wl, 0);
  EXPECT_NEAR(model.connection_loss_db(static_cast<std::size_t>(wl)), -0.5,
              1e-9);
  // L (row 0) -> W (col 4): 4 elements before col 4 on row 0, ON CPSE,
  // 4 rows below row 0 on col 4. Row 0 passes XLL(diagonal col0? no:
  // row L passes cols 0..3 = diag (L,L) crossing + 3 CPSEs off) then
  // turns; col 4 passes rows 1..4 = 3 CPSEs off + diag (W,W) crossing.
  const auto lw = model.connection_index(kPortLocal, kPortWest);
  ASSERT_GE(lw, 0);
  EXPECT_NEAR(model.connection_loss_db(static_cast<std::size_t>(lw)),
              2 * -0.04 + 6 * -0.045 + -0.5, 1e-9);
}

TEST(Crossbar, YxTurnsSupportedOnlyByFullVariant) {
  const RouterModel full(build_crossbar(), paper());
  EXPECT_GE(full.connection_index(kPortNorth, kPortEast), 0);
  CrossbarOptions options;
  options.xy_legal_only = true;
  const RouterModel xy(build_crossbar(options), paper());
  EXPECT_LT(xy.connection_index(kPortNorth, kPortEast), 0);
}

TEST(Crossbar, ParametricPortCount) {
  CrossbarOptions options;
  options.ports = 3;
  const auto netlist = build_crossbar(options);
  EXPECT_EQ(netlist.port_count(), 3u);
  EXPECT_EQ(netlist.connections().size(), 6u);  // 3*3 - diagonal
  EXPECT_NO_THROW(RouterModel(netlist, paper()));
  EXPECT_THROW(
      [] {
        CrossbarOptions bad;
        bad.ports = 1;
        return build_crossbar(bad);
      }(),
      InvalidArgument);
}

TEST(XyLegality, MatchesDimensionOrderRules) {
  EXPECT_TRUE(xy_legal_connection(kPortLocal, kPortNorth));
  EXPECT_TRUE(xy_legal_connection(kPortEast, kPortSouth));   // X -> Y turn
  EXPECT_TRUE(xy_legal_connection(kPortNorth, kPortSouth));  // Y straight
  EXPECT_TRUE(xy_legal_connection(kPortNorth, kPortLocal));
  EXPECT_FALSE(xy_legal_connection(kPortNorth, kPortEast));  // Y -> X turn
  EXPECT_FALSE(xy_legal_connection(kPortNorth, kPortNorth)); // U-turn
}

// --- parallel (PPSE) router -------------------------------------------------------

TEST(ParallelRouter, StructuralProperties) {
  const auto netlist = build_parallel_router();
  EXPECT_EQ(netlist.name(), "parallel");
  EXPECT_EQ(netlist.connections().size(), 16u);
  EXPECT_EQ(netlist.ring_count(), 12u);  // all PPSE now
  // 11 former CPSE sites gained an explicit crossing + XLL.
  EXPECT_EQ(netlist.crossing_count(), 12u);
  EXPECT_NO_THROW(RouterModel(netlist, paper()));
}

TEST(ParallelRouter, StraightLossMatchesCruxByConstruction) {
  // Lc + Lp,off == Lc,off with paper coefficients, so straight paths
  // cost the same as Crux while turns cost Lc + Lp,on > Lc,on.
  const RouterModel crux(build_crux(), paper());
  const RouterModel par(build_parallel_router(), paper());
  const auto loss = [&](const RouterModel& m, PortId i, PortId o) {
    return m.connection_loss_db(
        static_cast<std::size_t>(m.connection_index(i, o)));
  };
  EXPECT_NEAR(loss(par, kPortWest, kPortEast),
              loss(crux, kPortWest, kPortEast), 1e-9);
  EXPECT_LT(loss(par, kPortWest, kPortNorth),
            loss(crux, kPortWest, kPortNorth));
}

// --- registry ----------------------------------------------------------------------

TEST(RouterRegistry, BuiltinsPresent) {
  const auto names = registered_routers();
  for (const auto* expected : {"crux", "crossbar", "xy_crossbar", "parallel"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
}

TEST(RouterRegistry, UnknownNameListsKnown) {
  try {
    (void)make_router_netlist("warp_drive");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("crux"), std::string::npos);
  }
}

TEST(RouterRegistry, CustomRegistration) {
  register_router("custom_test_router", [] {
    CrossbarOptions options;
    options.ports = 5;
    auto netlist = build_crossbar(options);
    return netlist;
  });
  const auto netlist = make_router_netlist("CUSTOM_TEST_ROUTER");
  EXPECT_EQ(netlist.port_count(), 5u);
}

/// Parameterized sweep over every built-in router: all declared
/// connections must trace successfully and lose power (gain in (0, 1]),
/// and the conflict relation must be symmetric.
class RouterInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(RouterInvariants, ConnectionsTraceAndLose) {
  const RouterModel model(make_router_netlist(GetParam()), paper());
  for (std::size_t c = 0; c < model.connection_count(); ++c) {
    EXPECT_GT(model.connection_gain(c), 0.0);
    EXPECT_LE(model.connection_gain(c), 1.0);
    EXPECT_LE(model.connection_loss_db(c), 0.0);
    EXPECT_FALSE(model.trace(c).steps.empty());
  }
  EXPECT_LE(model.worst_connection_loss_db(), 0.0);
}

TEST_P(RouterInvariants, ConflictSymmetricAndSelfConflicting) {
  const RouterModel model(make_router_netlist(GetParam()), paper());
  const auto n = model.connection_count();
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_TRUE(model.conflicts(v, v));
    for (std::size_t a = 0; a < n; ++a)
      EXPECT_EQ(model.conflicts(v, a), model.conflicts(a, v));
  }
}

TEST_P(RouterInvariants, CrosstalkCoefficientsAreSubUnity) {
  const RouterModel model(make_router_netlist(GetParam()), paper());
  const auto n = model.connection_count();
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < n; ++a) {
      for (const auto fidelity :
           {ModelFidelity::Simplified, ModelFidelity::Full}) {
        const auto k = model.crosstalk_gain(v, a, fidelity);
        EXPECT_GE(k, 0.0);
        EXPECT_LT(k, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRouters, RouterInvariants,
                         ::testing::Values("crux", "crossbar", "xy_crossbar",
                                           "parallel"));

}  // namespace
}  // namespace phonoc
