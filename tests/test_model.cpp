// Unit tests for the network-level analytical model: path construction,
// insertion loss, crosstalk/SNR, conflict policies, power budget.

#include <gtest/gtest.h>

#include <memory>

#include "graph/comm_graph.hpp"
#include "model/crosstalk_analysis.hpp"
#include "model/evaluation.hpp"
#include "model/loss_analysis.hpp"
#include "model/network_model.hpp"
#include "model/power_budget.hpp"
#include "router/crux.hpp"
#include "router/router_model.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "topology/mesh.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {
namespace {

std::shared_ptr<const NetworkModel> make_mesh_network(
    std::uint32_t side, NetworkModelOptions options = {}) {
  GridOptions grid;
  grid.rows = grid.cols = side;
  auto router = std::make_shared<const RouterModel>(
      build_crux(), PhysicalParameters::paper_defaults());
  return std::make_shared<const NetworkModel>(
      build_mesh(grid), router, std::make_shared<const XyRouting>(), options);
}

// Hand-computed Crux connection losses (dB) used in expectations below.
constexpr double kInjectEastDb = -0.04 - 0.5 - 3 * 0.045;      // L->E = -0.675
constexpr double kEjectFromWestDb = -3 * 0.045 - 0.5 - 0.045 - 0.04;  // W->L
constexpr double kStraightWEDb = -4 * 0.045;                   // W->E = -0.18
constexpr double kLinkDb = -0.274 * 0.25;                      // 2.5 mm pitch

TEST(NetworkModel, SingleHopLossHandComputed) {
  const auto net = make_mesh_network(2);
  const auto t0 = net->topology().tile_at(0, 0);
  const auto t1 = net->topology().tile_at(0, 1);
  EXPECT_NEAR(net->path_loss_db(t0, t1),
              kInjectEastDb + kLinkDb + kEjectFromWestDb, 1e-9);
}

TEST(NetworkModel, TwoHopLossAddsStraightRouter) {
  const auto net = make_mesh_network(3);
  const auto t0 = net->topology().tile_at(0, 0);
  const auto t2 = net->topology().tile_at(0, 2);
  EXPECT_NEAR(net->path_loss_db(t0, t2),
              kInjectEastDb + 2 * kLinkDb + kStraightWEDb + kEjectFromWestDb,
              1e-9);
}

TEST(NetworkModel, PrefixSuffixIdentityAllPairs) {
  // arrive_gain[i] * conn_gain[i] * exit_suffix[i] == total_gain for
  // every hop of every path: the core invariant of PathData.
  const auto net = make_mesh_network(4);
  const auto& router = net->router();
  for (TileId s = 0; s < net->tile_count(); ++s) {
    for (TileId d = 0; d < net->tile_count(); ++d) {
      if (s == d) continue;
      const auto& path = net->path(s, d);
      for (std::size_t i = 0; i < path.hops.size(); ++i) {
        EXPECT_NEAR(path.arrive_gain[i] *
                        router.connection_gain(path.conn[i]) *
                        path.exit_suffix[i],
                    path.total_gain, 1e-12);
      }
      EXPECT_NEAR(linear_to_db(path.total_gain), path.total_loss_db, 1e-9);
    }
  }
}

TEST(NetworkModel, HopIndexAtMatchesHops) {
  const auto net = make_mesh_network(4);
  const auto& path = net->path(0, 15);
  for (std::size_t i = 0; i < path.hops.size(); ++i)
    EXPECT_EQ(path.hop_index_at(path.hops[i].tile), static_cast<int>(i));
  EXPECT_EQ(path.hop_index_at(5), -1);  // (1,1) not on the 0->15 XY route
}

TEST(NetworkModel, CruxRejectsYxRouting) {
  GridOptions grid;
  grid.rows = grid.cols = 3;
  auto router = std::make_shared<const RouterModel>(
      build_crux(), PhysicalParameters::paper_defaults());
  EXPECT_THROW(NetworkModel(build_mesh(grid), router,
                            std::make_shared<const YxRouting>(), {}),
               ModelError);
}

TEST(NetworkModel, PathAccessorsValidate) {
  const auto net = make_mesh_network(2);
  EXPECT_THROW((void)net->path(0, 0), InvalidArgument);
  EXPECT_THROW((void)net->path(0, 99), InvalidArgument);
}

TEST(NetworkModel, WorstCasePathLossBoundsEveryPair) {
  const auto net = make_mesh_network(3);
  const double worst = net->worst_case_path_loss_db();
  for (TileId s = 0; s < net->tile_count(); ++s) {
    for (TileId d = 0; d < net->tile_count(); ++d) {
      if (s == d) continue;
      EXPECT_GE(net->path_loss_db(s, d), worst - 1e-12);
    }
  }
}

// --- noise ------------------------------------------------------------------

TEST(Noise, EjectionIntoVictimSourceRouterAtCrossingFloor) {
  // Victim a->b injects L->E at tile (0,0); attacker c->a ejects S->L at
  // the same router: they interact only at the XLL crossing (Kc).
  const auto net = make_mesh_network(2);
  const auto& topo = net->topology();
  const auto t00 = topo.tile_at(0, 0);
  const auto t01 = topo.tile_at(0, 1);
  const auto t10 = topo.tile_at(1, 0);
  const auto& victim = net->path(t00, t01);
  const auto& attacker = net->path(t10, t00);

  const double noise = noise_contribution(*net, victim, attacker);
  // attacker L->N loss at its source router, then the link:
  const double attacker_arrive =
      db_to_linear(-0.04 - 2 * 0.045 - 0.5) * db_to_linear(kLinkDb);
  // victim downstream after its source router: link + W->L ejection.
  const double victim_suffix =
      db_to_linear(kLinkDb) * db_to_linear(kEjectFromWestDb);
  EXPECT_NEAR(noise, attacker_arrive * 1e-4 * victim_suffix, 1e-12);
}

TEST(Noise, DisjointPathsContributeNothing) {
  const auto net = make_mesh_network(3);
  const auto& topo = net->topology();
  // Top row east vs bottom row east: no shared routers.
  const auto& a = net->path(topo.tile_at(0, 0), topo.tile_at(0, 1));
  const auto& b = net->path(topo.tile_at(2, 0), topo.tile_at(2, 1));
  EXPECT_DOUBLE_EQ(noise_contribution(*net, a, b), 0.0);
  EXPECT_DOUBLE_EQ(noise_contribution(*net, b, a), 0.0);
}

TEST(Noise, ConflictPolicyIgnoreAddsRingConflictNoise) {
  // Victim turns W->N at the center tile while the attacker injects
  // L->E there: a ring-state conflict. Exclude drops it; Ignore keeps
  // the nominal coefficient, so Ignore must report at least as much
  // noise.
  NetworkModelOptions exclude_opts;
  NetworkModelOptions ignore_opts;
  ignore_opts.conflict_policy = ConflictPolicy::Ignore;
  const auto net_ex = make_mesh_network(3, exclude_opts);
  const auto net_ig = make_mesh_network(3, ignore_opts);
  const auto& topo = net_ex->topology();
  const auto victim_src = topo.tile_at(1, 0);
  const auto victim_dst = topo.tile_at(0, 1);  // E then N through (1,1)
  const auto att_src = topo.tile_at(1, 1);
  const auto att_dst = topo.tile_at(1, 2);

  const double noise_ex = noise_contribution(
      *net_ex, net_ex->path(victim_src, victim_dst),
      net_ex->path(att_src, att_dst));
  const double noise_ig = noise_contribution(
      *net_ig, net_ig->path(victim_src, victim_dst),
      net_ig->path(att_src, att_dst));
  EXPECT_DOUBLE_EQ(noise_ex, 0.0);
  EXPECT_GT(noise_ig, 0.0);
}

// --- evaluate_mapping ---------------------------------------------------------

CommGraph three_task_chain() {
  CommGraph cg("chain");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_task("c");
  cg.add_communication("a", "b", 64);
  cg.add_communication("b", "c", 64);
  return cg;
}

TEST(Evaluate, WorstValuesMatchDetailedMinimum) {
  const auto net = make_mesh_network(3);
  const auto cg = three_task_chain();
  const std::vector<TileId> assignment{0, 4, 8};
  const auto result = evaluate_mapping(*net, cg, assignment, true);
  ASSERT_EQ(result.edges.size(), 2u);
  double min_loss = 0.0;
  double min_snr = net->options().snr_ceiling_db;
  for (const auto& e : result.edges) {
    min_loss = std::min(min_loss, e.loss_db);
    min_snr = std::min(min_snr, e.snr_db);
  }
  EXPECT_DOUBLE_EQ(result.worst_loss_db, min_loss);
  EXPECT_DOUBLE_EQ(result.worst_snr_db, min_snr);
}

TEST(Evaluate, SingleEdgeHitsSnrCeiling) {
  NetworkModelOptions options;
  options.snr_ceiling_db = 150.0;
  const auto net = make_mesh_network(2, options);
  CommGraph cg("pair");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_communication("a", "b", 1);
  const std::vector<TileId> assignment{0, 3};
  const auto result = evaluate_mapping(*net, cg, assignment);
  EXPECT_DOUBLE_EQ(result.worst_snr_db, 150.0);  // no attacker, no noise
  EXPECT_LT(result.worst_loss_db, 0.0);
}

TEST(Evaluate, EdgelessGraphIsNeutral) {
  const auto net = make_mesh_network(2);
  CommGraph cg("lonely");
  cg.add_task("only");
  const std::vector<TileId> assignment{2};
  const auto result = evaluate_mapping(*net, cg, assignment);
  EXPECT_DOUBLE_EQ(result.worst_loss_db, 0.0);
  EXPECT_DOUBLE_EQ(result.worst_snr_db, net->options().snr_ceiling_db);
}

TEST(Evaluate, RejectsIllegalAssignments) {
  const auto net = make_mesh_network(2);
  const auto cg = three_task_chain();
  EXPECT_THROW(evaluate_mapping(*net, cg, std::vector<TileId>{0, 1}),
               InvalidArgument);  // size mismatch
  EXPECT_THROW(evaluate_mapping(*net, cg, std::vector<TileId>{0, 1, 1}),
               InvalidArgument);  // duplicate tile
  EXPECT_THROW(evaluate_mapping(*net, cg, std::vector<TileId>{0, 1, 9}),
               InvalidArgument);  // out of range
}

TEST(Evaluate, FullFidelityNoiseNeverExceedsSimplified) {
  NetworkModelOptions simp;
  NetworkModelOptions full;
  full.fidelity = ModelFidelity::Full;
  const auto net_s = make_mesh_network(3, simp);
  const auto net_f = make_mesh_network(3, full);
  const auto cg = three_task_chain();
  const std::vector<TileId> assignment{0, 1, 5};
  const auto rs = evaluate_mapping(*net_s, cg, assignment, true);
  const auto rf = evaluate_mapping(*net_f, cg, assignment, true);
  for (std::size_t i = 0; i < rs.edges.size(); ++i) {
    EXPECT_LE(rf.edges[i].noise_gain, rs.edges[i].noise_gain + 1e-15);
    EXPECT_GE(rf.edges[i].snr_db, rs.edges[i].snr_db - 1e-9);
  }
}

TEST(Evaluate, DeterministicAcrossCalls) {
  const auto net = make_mesh_network(3);
  const auto cg = three_task_chain();
  const std::vector<TileId> assignment{3, 4, 7};
  const auto a = evaluate_mapping(*net, cg, assignment, true);
  const auto b = evaluate_mapping(*net, cg, assignment, true);
  EXPECT_DOUBLE_EQ(a.worst_loss_db, b.worst_loss_db);
  EXPECT_DOUBLE_EQ(a.worst_snr_db, b.worst_snr_db);
}

// --- loss breakdown -------------------------------------------------------------

TEST(LossBreakdown, ContributionsSumToPathLoss) {
  const auto net = make_mesh_network(4);
  const std::pair<TileId, TileId> pairs[] = {
      {0, 15}, {3, 12}, {5, 6}, {0, 1}};
  for (const auto& [s, d] : pairs) {
    const auto breakdown = analyze_path_loss(*net, s, d);
    EXPECT_NEAR(breakdown.total_db, net->path_loss_db(s, d), 1e-9);
    double sum = 0.0;
    for (const auto& c : breakdown.contributions) sum += c.loss_db;
    EXPECT_NEAR(sum, breakdown.total_db, 1e-9);
    EXPECT_EQ(breakdown.hop_count, net->path(s, d).hops.size());
  }
}

TEST(LossBreakdown, LabelsCarryPortNames) {
  const auto net = make_mesh_network(2);
  const auto breakdown = analyze_path_loss(*net, 0, 1);
  ASSERT_FALSE(breakdown.contributions.empty());
  EXPECT_EQ(breakdown.contributions.front().label, "L->E");
}

// --- crosstalk analysis -----------------------------------------------------------

TEST(CrosstalkAnalysis, TotalsAgreeWithEvaluator) {
  const auto net = make_mesh_network(3);
  CommGraph cg("x");
  cg.add_task("a");
  cg.add_task("b");
  cg.add_task("c");
  cg.add_task("d");
  cg.add_communication("a", "b", 1);
  cg.add_communication("c", "d", 1);
  cg.add_communication("d", "a", 1);
  const std::vector<TileId> assignment{0, 1, 3, 4};
  const auto reports = analyze_crosstalk(*net, cg, assignment);
  const auto eval = evaluate_mapping(*net, cg, assignment, true);
  ASSERT_EQ(reports.size(), eval.edges.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_NEAR(reports[i].total_noise, eval.edges[i].noise_gain, 1e-15);
    EXPECT_NEAR(reports[i].snr_db, eval.edges[i].snr_db, 1e-9);
    // Events sorted by decreasing contribution.
    for (std::size_t e = 1; e < reports[i].events.size(); ++e)
      EXPECT_GE(reports[i].events[e - 1].noise_at_detector,
                reports[i].events[e].noise_at_detector);
    // Every event decomposes into its three factors.
    for (const auto& ev : reports[i].events)
      EXPECT_NEAR(ev.noise_at_detector,
                  ev.attacker_power * ev.coefficient * ev.downstream_gain,
                  1e-18);
  }
}

// --- power budget -------------------------------------------------------------------

TEST(PowerBudget, HandComputed) {
  PowerBudgetOptions options;  // sensitivity -20 dBm, max 10 dBm, 1 dB margin
  const auto budget = compute_power_budget(-3.0, options);
  EXPECT_NEAR(budget.required_power_dbm, -20.0 + 3.0 + 1.0, 1e-12);
  EXPECT_NEAR(budget.available_power_dbm, 10.0, 1e-12);
  EXPECT_NEAR(budget.slack_db, 26.0, 1e-12);
  EXPECT_TRUE(budget.feasible);
}

TEST(PowerBudget, InfeasibleWhenLossTooHigh) {
  const auto budget = compute_power_budget(-35.0, {});
  EXPECT_GT(budget.required_power_dbm, budget.available_power_dbm);
  EXPECT_FALSE(budget.feasible);
  EXPECT_LT(budget.slack_db, 0.0);
}

TEST(PowerBudget, WavelengthChannelsSplitTheCeiling) {
  PowerBudgetOptions options;
  options.wavelength_channels = 10;
  const auto budget = compute_power_budget(-2.0, options);
  EXPECT_NEAR(budget.available_power_dbm, 0.0, 1e-12);  // 10 - 10log10(10)
}

TEST(PowerBudget, RejectsBadInput) {
  EXPECT_THROW((void)compute_power_budget(1.0, {}), InvalidArgument);
  PowerBudgetOptions options;
  options.wavelength_channels = 0;
  EXPECT_THROW((void)compute_power_budget(-1.0, options), InvalidArgument);
}

/// More loss means strictly more required laser power.
class PowerBudgetMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(PowerBudgetMonotonic, RequiredPowerGrowsWithLoss) {
  const double loss = GetParam();
  const auto a = compute_power_budget(loss, {});
  const auto b = compute_power_budget(loss - 1.0, {});
  EXPECT_GT(b.required_power_dbm, a.required_power_dbm);
  EXPECT_LT(b.slack_db, a.slack_db);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, PowerBudgetMonotonic,
                         ::testing::Values(-0.5, -2.0, -5.0, -10.0, -20.0));

}  // namespace
}  // namespace phonoc
