// Tests for the WDM wavelength-assignment extension.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "mapping/mapping.hpp"
#include "model/evaluation.hpp"
#include "model/wavelength.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/benchmarks.hpp"

namespace phonoc {
namespace {

struct Fixture {
  MappingProblem problem;
  Mapping mapping;
};

Fixture make_fixture(const std::string& app, std::uint64_t seed = 5) {
  ExperimentSpec spec;
  spec.benchmark = app;
  auto problem = make_experiment(spec);
  Rng rng(seed);
  auto mapping =
      Mapping::random(problem.task_count(), problem.tile_count(), rng);
  return Fixture{std::move(problem), std::move(mapping)};
}

TEST(Wdm, InterferenceMatrixMatchesEvaluator) {
  const auto fx = make_fixture("mpeg4");
  const auto w = interference_matrix(fx.problem.network(), fx.problem.cg(),
                                     fx.mapping.assignment());
  const auto eval = evaluate_mapping(fx.problem.network(), fx.problem.cg(),
                                     fx.mapping.assignment(), true);
  ASSERT_EQ(w.size(), eval.edges.size());
  for (std::size_t v = 0; v < w.size(); ++v) {
    double row = 0.0;
    for (std::size_t a = 0; a < w.size(); ++a) row += w[v][a];
    EXPECT_NEAR(row, eval.edges[v].noise_gain, 1e-15);
    EXPECT_DOUBLE_EQ(w[v][v], 0.0);
  }
}

TEST(Wdm, SingleChannelEqualsBaseline) {
  const auto fx = make_fixture("vopd");
  WdmOptions options;
  options.channels = 1;
  const auto wdm = assign_wavelengths(fx.problem.network(), fx.problem.cg(),
                                      fx.mapping.assignment(), options);
  EXPECT_EQ(wdm.channels_used, 1u);
  const auto with_wdm =
      evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                           fx.mapping.assignment(), wdm, options);
  const auto baseline = evaluate_mapping(
      fx.problem.network(), fx.problem.cg(), fx.mapping.assignment());
  EXPECT_NEAR(with_wdm.worst_snr_db, baseline.worst_snr_db, 1e-9);
  EXPECT_NEAR(with_wdm.worst_loss_db, baseline.worst_loss_db, 1e-12);
}

TEST(Wdm, AssignmentStaysWithinChannelBudget) {
  const auto fx = make_fixture("mpeg4");
  for (const std::uint32_t channels : {1u, 2u, 3u, 8u}) {
    WdmOptions options;
    options.channels = channels;
    const auto wdm = assign_wavelengths(
        fx.problem.network(), fx.problem.cg(), fx.mapping.assignment(),
        options);
    EXPECT_LE(wdm.channels_used, channels);
    for (const auto c : wdm.channel) EXPECT_LT(c, channels);
  }
}

TEST(Wdm, Deterministic) {
  const auto fx = make_fixture("wavelet");
  WdmOptions options;
  options.channels = 4;
  const auto a = assign_wavelengths(fx.problem.network(), fx.problem.cg(),
                                    fx.mapping.assignment(), options);
  const auto b = assign_wavelengths(fx.problem.network(), fx.problem.cg(),
                                    fx.mapping.assignment(), options);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_DOUBLE_EQ(a.residual_weight, b.residual_weight);
}

TEST(Wdm, ResidualWeightShrinksWithChannels) {
  const auto fx = make_fixture("mpeg4");
  double previous = -1.0;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    WdmOptions options;
    options.channels = channels;
    const auto wdm = assign_wavelengths(
        fx.problem.network(), fx.problem.cg(), fx.mapping.assignment(),
        options);
    if (previous >= 0.0) {
      EXPECT_LE(wdm.residual_weight, previous + 1e-15);
    }
    previous = wdm.residual_weight;
  }
}

TEST(Wdm, NearIdealIsolationWithManyChannelsApproachesCeiling) {
  const auto fx = make_fixture("pip");
  WdmOptions options;
  options.channels =
      static_cast<std::uint32_t>(fx.problem.cg().communication_count());
  options.inter_channel_isolation_db = -300.0;  // effectively ideal
  const auto wdm = assign_wavelengths(fx.problem.network(), fx.problem.cg(),
                                      fx.mapping.assignment(), options);
  const auto result =
      evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                           fx.mapping.assignment(), wdm, options);
  // Every pair separable: residual intra-channel noise ~ 0.
  EXPECT_GT(result.worst_snr_db, 150.0);
}

TEST(Wdm, StrongerIsolationNeverHurts) {
  const auto fx = make_fixture("vopd");
  WdmOptions coarse;
  coarse.channels = 4;
  coarse.inter_channel_isolation_db = -10.0;
  const auto wdm = assign_wavelengths(fx.problem.network(), fx.problem.cg(),
                                      fx.mapping.assignment(), coarse);
  WdmOptions fine = coarse;
  fine.inter_channel_isolation_db = -40.0;
  const auto rc = evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                                       fx.mapping.assignment(), wdm, coarse);
  const auto rf = evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                                       fx.mapping.assignment(), wdm, fine);
  EXPECT_GE(rf.worst_snr_db, rc.worst_snr_db - 1e-9);
}

/// Channel sweep property: with ideal isolation, more channels never
/// lower the worst-case SNR (greedy joins the least-noisy channel, so
/// an extra empty channel can only help or tie).
class WdmChannelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WdmChannelSweep, MoreChannelsNeverWorse) {
  const auto fx = make_fixture(GetParam());
  double previous_snr = -1e9;
  for (const std::uint32_t channels : {1u, 2u, 4u, 8u}) {
    WdmOptions options;
    options.channels = channels;
    options.inter_channel_isolation_db = -300.0;
    const auto wdm = assign_wavelengths(
        fx.problem.network(), fx.problem.cg(), fx.mapping.assignment(),
        options);
    const auto result =
        evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                             fx.mapping.assignment(), wdm, options);
    EXPECT_GE(result.worst_snr_db, previous_snr - 1e-9)
        << channels << " channels";
    previous_snr = result.worst_snr_db;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, WdmChannelSweep,
                         ::testing::Values("pip", "mwd", "mpeg4", "vopd"));

TEST(Wdm, Validation) {
  const auto fx = make_fixture("pip");
  WdmOptions options;
  options.channels = 0;
  EXPECT_THROW((void)assign_wavelengths(fx.problem.network(),
                                        fx.problem.cg(),
                                        fx.mapping.assignment(), options),
               InvalidArgument);
  WdmOptions gain;
  gain.inter_channel_isolation_db = 1.0;
  WdmAssignment wdm;
  wdm.channel.assign(fx.problem.cg().communication_count(), 0);
  EXPECT_THROW(
      (void)evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                                 fx.mapping.assignment(), wdm, gain),
      InvalidArgument);
  WdmAssignment short_wdm;  // wrong edge coverage
  EXPECT_THROW(
      (void)evaluate_mapping_wdm(fx.problem.network(), fx.problem.cg(),
                                 fx.mapping.assignment(), short_wdm,
                                 WdmOptions{}),
      InvalidArgument);
}

}  // namespace
}  // namespace phonoc
