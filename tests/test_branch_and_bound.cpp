// Tests for the exact branch-and-bound loss solver, and its use as a
// certification oracle for the heuristics.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "mapping/branch_and_bound.hpp"
#include "mapping/exhaustive.hpp"
#include "util/error.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/generator.hpp"

namespace phonoc {
namespace {

OptimizerBudget evals(std::uint64_t n) {
  OptimizerBudget budget;
  budget.max_evaluations = n;
  return budget;
}

MappingProblem loss_problem(CommGraph cg, std::uint32_t side) {
  auto network = make_network(TopologyKind::Mesh, side, "crux");
  return MappingProblem(std::move(cg), network,
                        make_objective(OptimizationGoal::InsertionLoss));
}

TEST(BranchAndBound, MatchesExhaustiveOnTinyInstances) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto cg = random_cg({.tasks = 4,
                         .avg_out_degree = 1.5,
                         .min_bandwidth = 8,
                         .max_bandwidth = 64,
                         .seed = seed,
                         .acyclic = false});
    const auto problem = loss_problem(std::move(cg), 2);
    const Engine engine(problem);
    const auto exhaustive = engine.run("exhaustive", evals(100), 0);
    const auto bnb = engine.run("bnb", evals(100000), 0);
    EXPECT_NEAR(bnb.best_evaluation.worst_loss_db,
                exhaustive.best_evaluation.worst_loss_db, 1e-9)
        << "seed " << seed;
  }
}

TEST(BranchAndBound, SolvesMidSizeInstanceAndPrunes) {
  // 8 tasks on 3x3 = 181440 assignments; the solver must prove the
  // optimum while evaluating only a fraction of them.
  const auto problem = loss_problem(make_benchmark("pip"), 3);
  Evaluator evaluator(problem);
  const BranchAndBound bnb(problem.cg(), problem.network_ptr());
  const auto result = bnb.optimize(evaluator, problem.task_count(),
                                   problem.tile_count(), evals(2000000), 0);
  EXPECT_TRUE(bnb.proved_optimal());
  EXPECT_LT(result.evaluations, 181440u / 2);  // pruning actually bites
  // The proved optimum upper-bounds every heuristic.
  const Engine engine(problem);
  const auto rpbla = engine.run("rpbla", evals(5000), 3);
  EXPECT_GE(result.best_fitness + 1e-9,
            rpbla.best_evaluation.worst_loss_db);
}

TEST(BranchAndBound, HeuristicsReachTheCertifiedOptimumOnPip) {
  const auto problem = loss_problem(make_benchmark("pip"), 3);
  const Engine engine(problem);
  const auto optimum = engine.run("bnb", evals(2000000), 0);
  const auto rpbla = engine.run("rpbla", evals(8000), 3);
  // R-PBLA should actually attain the optimum on this small instance.
  EXPECT_NEAR(rpbla.best_evaluation.worst_loss_db,
              optimum.best_evaluation.worst_loss_db, 0.15);
}

TEST(BranchAndBound, BudgetPreemptionIsReported) {
  // A one-evaluation budget is exhausted at the very first leaf, so the
  // solver must report the search as incomplete (pruning can otherwise
  // legitimately finish VOPD-sized instances within surprisingly few
  // leaf evaluations).
  const auto problem = loss_problem(make_benchmark("vopd"), 4);
  Evaluator evaluator(problem);
  const BranchAndBound bnb(problem.cg(), problem.network_ptr());
  const auto result = bnb.optimize(evaluator, problem.task_count(),
                                   problem.tile_count(), evals(1), 0);
  EXPECT_FALSE(bnb.proved_optimal());
  EXPECT_GE(result.evaluations, 1u);  // still returns a valid mapping
}

TEST(BranchAndBound, ValidatesProblemShape) {
  const auto problem = loss_problem(make_benchmark("pip"), 3);
  Evaluator evaluator(problem);
  const BranchAndBound bnb(problem.cg(), problem.network_ptr());
  EXPECT_THROW((void)bnb.optimize(evaluator, 3, problem.tile_count(),
                                  evals(10), 0),
               InvalidArgument);
  EXPECT_THROW(BranchAndBound(problem.cg(), nullptr), InvalidArgument);
}

}  // namespace
}  // namespace phonoc
