// Unit tests for the routing algorithms: XY, YX, torus DOR, tables.

#include <gtest/gtest.h>

#include <algorithm>

#include "router/crossbar.hpp"
#include "routing/registry.hpp"
#include "routing/table_routing.hpp"
#include "routing/torus_dor.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "topology/mesh.hpp"
#include "topology/ring.hpp"
#include "topology/torus.hpp"
#include "util/error.hpp"

namespace phonoc {
namespace {

Topology mesh4() {
  GridOptions options;
  options.rows = 4;
  options.cols = 4;
  return build_mesh(options);
}

TEST(XyRouting, GoesXThenY) {
  const auto topo = mesh4();
  const XyRouting xy;
  // (0,0) -> (2,3): 3 east, 2 south.
  const auto route = xy.compute_route(topo, topo.tile_at(0, 0),
                                      topo.tile_at(2, 3));
  ASSERT_EQ(route.hop_count(), 6u);
  EXPECT_EQ(route.hops.front().in_port, kPortLocal);
  EXPECT_EQ(route.hops.back().out_port, kPortLocal);
  EXPECT_EQ(route.hops[0].out_port, kPortEast);
  EXPECT_EQ(route.hops[1].out_port, kPortEast);
  EXPECT_EQ(route.hops[2].out_port, kPortEast);
  EXPECT_EQ(route.hops[3].out_port, kPortSouth);
  EXPECT_EQ(route.hops[4].out_port, kPortSouth);
}

TEST(XyRouting, NeverEmitsYToXTurns) {
  const auto topo = mesh4();
  const XyRouting xy;
  for (TileId s = 0; s < topo.tile_count(); ++s) {
    for (TileId d = 0; d < topo.tile_count(); ++d) {
      if (s == d) continue;
      const auto route = xy.compute_route(topo, s, d);
      for (const auto& hop : route.hops) {
        EXPECT_TRUE(xy_legal_connection(hop.in_port, hop.out_port))
            << "illegal " << standard_port_name(hop.in_port) << "->"
            << standard_port_name(hop.out_port);
      }
    }
  }
}

TEST(XyRouting, MinimalHopCount) {
  const auto topo = mesh4();
  const XyRouting xy;
  for (TileId s = 0; s < topo.tile_count(); ++s) {
    for (TileId d = 0; d < topo.tile_count(); ++d) {
      if (s == d) continue;
      const auto ps = topo.position(s);
      const auto pd = topo.position(d);
      const auto manhattan =
          (ps.row > pd.row ? ps.row - pd.row : pd.row - ps.row) +
          (ps.col > pd.col ? ps.col - pd.col : pd.col - ps.col);
      EXPECT_EQ(xy.compute_route(topo, s, d).hop_count(), manhattan + 1);
    }
  }
}

TEST(XyRouting, RejectsSelfRoute) {
  const auto topo = mesh4();
  EXPECT_THROW(XyRouting{}.compute_route(topo, 3, 3), InvalidArgument);
}

TEST(YxRouting, GoesYThenX) {
  const auto topo = mesh4();
  const YxRouting yx;
  const auto route = yx.compute_route(topo, topo.tile_at(0, 0),
                                      topo.tile_at(2, 3));
  EXPECT_EQ(route.hops[0].out_port, kPortSouth);
  EXPECT_EQ(route.hops[2].out_port, kPortEast);
  // YX emits Y->X turns (which Crux cannot serve).
  bool has_y_to_x = false;
  for (const auto& hop : route.hops)
    if ((hop.in_port == kPortNorth || hop.in_port == kPortSouth) &&
        (hop.out_port == kPortEast || hop.out_port == kPortWest))
      has_y_to_x = true;
  EXPECT_TRUE(has_y_to_x);
}

TEST(TorusDor, TakesShortestWrap) {
  TorusOptions options;
  options.rows = 4;
  options.cols = 4;
  const auto topo = build_torus(options);
  const TorusDorRouting dor;
  // (0,0) -> (0,3): wrap west (1 hop) beats 3 hops east.
  const auto route = dor.compute_route(topo, topo.tile_at(0, 0),
                                       topo.tile_at(0, 3));
  EXPECT_EQ(route.hop_count(), 2u);
  EXPECT_EQ(route.hops[0].out_port, kPortWest);
  // (0,0) -> (0,2): tie (2 either way) broken toward East.
  const auto tie = dor.compute_route(topo, topo.tile_at(0, 0),
                                     topo.tile_at(0, 2));
  EXPECT_EQ(tie.hop_count(), 3u);
  EXPECT_EQ(tie.hops[0].out_port, kPortEast);
}

TEST(TorusDor, DiameterHalvedVersusMesh) {
  TorusOptions options;
  options.rows = 4;
  options.cols = 4;
  const auto torus = build_torus(options);
  const TorusDorRouting dor;
  std::size_t max_hops = 0;
  for (TileId s = 0; s < torus.tile_count(); ++s)
    for (TileId d = 0; d < torus.tile_count(); ++d)
      if (s != d)
        max_hops = std::max(max_hops, dor.compute_route(torus, s, d)
                                          .hop_count());
  // Torus diameter 2+2 -> 5 routers; 4x4 mesh would be 7.
  EXPECT_EQ(max_hops, 5u);
}

TEST(TorusDor, AsymmetricGridRoutesCorrectly) {
  // Rectangular torus: wrap distances differ per dimension.
  TorusOptions options;
  options.rows = 3;
  options.cols = 5;
  const auto topo = build_torus(options);
  const TorusDorRouting dor;
  for (TileId s = 0; s < topo.tile_count(); ++s) {
    for (TileId d = 0; d < topo.tile_count(); ++d) {
      if (s == d) continue;
      const auto route = dor.compute_route(topo, s, d);
      EXPECT_NO_THROW(validate_route(topo, route, s, d));
      // Hop count is 1 + cyclic Manhattan distance.
      const auto ps = topo.position(s);
      const auto pd = topo.position(d);
      const auto cyc = [](std::uint32_t a, std::uint32_t b,
                          std::uint32_t n) {
        const auto fwd = (b + n - a) % n;
        return std::min(fwd, n - fwd);
      };
      EXPECT_EQ(route.hop_count(),
                1 + cyc(ps.col, pd.col, 5) + cyc(ps.row, pd.row, 3));
    }
  }
}

TEST(RouteValidation, CatchesCorruptRoutes) {
  const auto topo = mesh4();
  const XyRouting xy;
  auto route = xy.compute_route(topo, 0, 3);
  EXPECT_NO_THROW(validate_route(topo, route, 0, 3));
  auto bad = route;
  bad.hops.back().out_port = kPortEast;  // must end at Local
  EXPECT_THROW(validate_route(topo, bad, 0, 3), ModelError);
  auto bad2 = route;
  bad2.links.pop_back();
  EXPECT_THROW(validate_route(topo, bad2, 0, 3), ModelError);
  auto bad3 = route;
  bad3.hops.front().in_port = kPortNorth;
  EXPECT_THROW(validate_route(topo, bad3, 0, 3), ModelError);
}

TEST(Route, TotalLinkLength) {
  const auto topo = mesh4();
  const XyRouting xy;
  const auto route = xy.compute_route(topo, 0, 3);  // 3 east hops
  EXPECT_DOUBLE_EQ(route.total_link_length_cm(topo), 3 * 0.25);
}

TEST(ExtendRoute, ThrowsOffGrid) {
  const auto topo = mesh4();
  auto route = start_route(0);
  EXPECT_THROW(extend_route(topo, route, kPortNorth), ModelError);
}

TEST(TableRouting, ManualRoutes) {
  const auto topo = mesh4();
  TableRouting table;
  EXPECT_FALSE(table.has_route(0, 5));
  table.set_route(0, 5, {kPortEast, kPortSouth});
  ASSERT_TRUE(table.has_route(0, 5));
  const auto route = table.compute_route(topo, 0, 5);
  EXPECT_EQ(route.hop_count(), 3u);
  EXPECT_EQ(route.hops.back().tile, 5u);
  EXPECT_THROW(table.compute_route(topo, 0, 9), ModelError);
  EXPECT_THROW(table.set_route(1, 1, {kPortEast}), InvalidArgument);
}

TEST(TableRouting, ShortestPathsCoverMesh) {
  const auto topo = mesh4();
  const auto table = TableRouting::shortest_paths(topo);
  for (TileId s = 0; s < topo.tile_count(); ++s) {
    for (TileId d = 0; d < topo.tile_count(); ++d) {
      if (s == d) continue;
      const auto route = table.compute_route(topo, s, d);
      EXPECT_NO_THROW(validate_route(topo, route, s, d));
      const auto ps = topo.position(s);
      const auto pd = topo.position(d);
      const auto manhattan =
          (ps.row > pd.row ? ps.row - pd.row : pd.row - ps.row) +
          (ps.col > pd.col ? ps.col - pd.col : pd.col - ps.col);
      EXPECT_EQ(route.hop_count(), manhattan + 1);  // BFS = minimal
    }
  }
}

TEST(TableRouting, ShortestPathsOnRing) {
  const auto topo = build_ring(RingOptions{5, 2.5});
  const auto table = TableRouting::shortest_paths(topo);
  // 0 -> 2: two hops east or three west; BFS must pick two.
  EXPECT_EQ(table.compute_route(topo, 0, 2).hop_count(), 3u);
}

TEST(RoutingRegistry, Builtins) {
  const auto names = registered_routings();
  for (const auto* expected : {"xy", "yx", "torus_dor"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  EXPECT_EQ(make_routing("XY")->name(), "xy");
  EXPECT_THROW(make_routing("zigzag"), InvalidArgument);
}

TEST(RoutingRegistry, CustomRegistration) {
  register_routing("xy_alias", [] { return std::make_unique<XyRouting>(); });
  EXPECT_EQ(make_routing("xy_alias")->name(), "xy");
}

}  // namespace
}  // namespace phonoc
