// Tests for the optimization strategies. Most use a cheap synthetic
// fitness (negative displacement from the identity layout) whose global
// optimum is known, so convergence and budget behaviour are testable
// without a network model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mapping/annealing.hpp"
#include "mapping/exhaustive.hpp"
#include "mapping/genetic.hpp"
#include "mapping/optimizer.hpp"
#include "mapping/random_search.hpp"
#include "mapping/registry.hpp"
#include "mapping/rpbla.hpp"
#include "mapping/tabu.hpp"
#include "util/error.hpp"

namespace phonoc {
namespace {

/// Fitness 0 at the identity mapping, negative elsewhere.
class DisplacementFitness final : public FitnessFunction {
 public:
  double evaluate(const Mapping& mapping) override {
    ++calls;
    double penalty = 0.0;
    for (NodeId t = 0; t < mapping.task_count(); ++t) {
      const double d = static_cast<double>(mapping.tile_of(t)) -
                       static_cast<double>(t);
      penalty += std::abs(d);
    }
    return -penalty;
  }
  std::uint64_t calls = 0;
};

OptimizerBudget evals(std::uint64_t n) {
  OptimizerBudget budget;
  budget.max_evaluations = n;
  return budget;
}

// --- SearchState ----------------------------------------------------------------

TEST(SearchState, TracksIncumbentAndTrace) {
  DisplacementFitness fitness;
  SearchState state(fitness, 3, 4, evals(100), 1);
  EXPECT_FALSE(state.has_best());
  const auto worse = Mapping::from_assignment({3, 1, 0}, 4);
  const auto better = Mapping::identity(3, 4);
  state.evaluate(worse);
  EXPECT_TRUE(state.has_best());
  state.evaluate(better);
  EXPECT_DOUBLE_EQ(state.best_fitness(), 0.0);
  EXPECT_TRUE(state.best() == better);
  const auto result = state.finish(7);
  EXPECT_EQ(result.evaluations, 2u);
  EXPECT_EQ(result.iterations, 7u);
  ASSERT_EQ(result.trace.size(), 2u);
  EXPECT_LT(result.trace[0].fitness, result.trace[1].fitness);
  EXPECT_EQ(result.trace[1].evaluation, 2u);
}

TEST(SearchState, BudgetExhaustion) {
  DisplacementFitness fitness;
  SearchState state(fitness, 2, 4, evals(3), 1);
  Rng rng(1);
  EXPECT_FALSE(state.exhausted());
  for (int i = 0; i < 3; ++i)
    state.evaluate(Mapping::random(2, 4, rng));
  EXPECT_TRUE(state.exhausted());
}

TEST(SearchState, RejectsBadConfigs) {
  DisplacementFitness fitness;
  EXPECT_THROW(SearchState(fitness, 5, 4, evals(10), 1), InvalidArgument);
  OptimizerBudget empty;
  empty.max_evaluations = 0;
  EXPECT_THROW(SearchState(fitness, 2, 4, empty, 1), InvalidArgument);
}

// --- crossover operators -----------------------------------------------------------

bool is_permutation_of_n(const std::vector<TileId>& v) {
  std::set<TileId> seen(v.begin(), v.end());
  return seen.size() == v.size() && *seen.begin() == 0 &&
         *seen.rbegin() == v.size() - 1;
}

class CrossoverSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossoverSweep, ChildrenAreValidPermutations) {
  Rng rng(GetParam());
  const std::size_t n = 10;
  std::vector<TileId> a(n), b(n);
  for (TileId i = 0; i < n; ++i) a[i] = b[i] = i;
  rng.shuffle(a);
  rng.shuffle(b);
  for (int trial = 0; trial < 20; ++trial) {
    auto lo = static_cast<std::size_t>(rng.next_below(n));
    auto hi = static_cast<std::size_t>(rng.next_below(n));
    if (lo > hi) std::swap(lo, hi);
    const auto pmx = pmx_crossover(a, b, lo, hi);
    const auto ox = ox_crossover(a, b, lo, hi);
    ASSERT_TRUE(is_permutation_of_n(pmx));
    ASSERT_TRUE(is_permutation_of_n(ox));
    // Both operators preserve the parent-A segment in place.
    for (std::size_t i = lo; i <= hi; ++i) {
      EXPECT_EQ(pmx[i], a[i]);
      EXPECT_EQ(ox[i], a[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossoverSweep,
                         ::testing::Values(1, 2, 3, 11, 99));

TEST(Crossover, FullRangeCopiesParentA) {
  const std::vector<TileId> a{3, 1, 0, 2};
  const std::vector<TileId> b{0, 1, 2, 3};
  EXPECT_EQ(pmx_crossover(a, b, 0, 3), a);
  EXPECT_EQ(ox_crossover(a, b, 0, 3), a);
}

TEST(Crossover, RejectsMismatchedInputs) {
  const std::vector<TileId> a{0, 1, 2};
  const std::vector<TileId> b{0, 1};
  EXPECT_THROW(pmx_crossover(a, b, 0, 1), InvalidArgument);
  EXPECT_THROW(ox_crossover(a, a, 2, 1), InvalidArgument);
  EXPECT_THROW(pmx_crossover(a, a, 0, 5), InvalidArgument);
}

// --- common optimizer behaviour (parameterized over all registered) ----------------

class OptimizerSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerSweep, RespectsEvaluationBudget) {
  DisplacementFitness fitness;
  const auto optimizer = make_optimizer(GetParam());
  const auto result = optimizer->optimize(fitness, 4, 9, evals(200), 3);
  EXPECT_LE(result.evaluations, 220u);  // small overshoot allowed per loop
  EXPECT_EQ(result.evaluations, fitness.calls);
  EXPECT_GE(result.evaluations, 1u);
}

TEST_P(OptimizerSweep, DeterministicForSameSeed) {
  const auto optimizer = make_optimizer(GetParam());
  DisplacementFitness f1, f2;
  const auto a = optimizer->optimize(f1, 4, 9, evals(300), 42);
  const auto b = optimizer->optimize(f2, 4, 9, evals(300), 42);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_TRUE(a.best == b.best);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_P(OptimizerSweep, BestFitnessMatchesBestMapping) {
  const auto optimizer = make_optimizer(GetParam());
  DisplacementFitness fitness;
  const auto result = optimizer->optimize(fitness, 5, 9, evals(400), 7);
  DisplacementFitness check;
  EXPECT_DOUBLE_EQ(check.evaluate(result.best), result.best_fitness);
}

TEST_P(OptimizerSweep, TraceIsMonotoneImproving) {
  const auto optimizer = make_optimizer(GetParam());
  DisplacementFitness fitness;
  const auto result = optimizer->optimize(fitness, 5, 9, evals(400), 11);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GT(result.trace[i].fitness, result.trace[i - 1].fitness);
    EXPECT_GT(result.trace[i].evaluation, result.trace[i - 1].evaluation);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerSweep,
                         ::testing::Values("rs", "ga", "rpbla", "sa", "tabu",
                                           "exhaustive"));

// --- algorithm-specific behaviour ----------------------------------------------------

TEST(Exhaustive, FindsGlobalOptimumOnTinyInstance) {
  DisplacementFitness fitness;
  const ExhaustiveSearch search;
  // 3 tasks on 4 tiles: 24 assignments; optimum is the identity.
  const auto result = search.optimize(fitness, 3, 4, evals(100), 0);
  EXPECT_DOUBLE_EQ(result.best_fitness, 0.0);
  EXPECT_EQ(result.iterations, 24u);  // complete enumeration
  EXPECT_EQ(result.evaluations, 24u);
}

TEST(Exhaustive, SearchSpaceArithmetic) {
  EXPECT_EQ(ExhaustiveSearch::search_space(3, 4), 24u);
  EXPECT_EQ(ExhaustiveSearch::search_space(1, 10), 10u);
  EXPECT_EQ(ExhaustiveSearch::search_space(0, 5), 1u);
  // 64 tasks on 64 tiles overflows: saturates instead of wrapping.
  EXPECT_EQ(ExhaustiveSearch::search_space(64, 64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Rpbla, ConvergesToGlobalOptimumOnSeparableLandscape) {
  // The displacement landscape has no local minima under tile swaps, so
  // a single R-PBLA descent must reach the global optimum.
  DisplacementFitness fitness;
  const Rpbla rpbla;
  const auto result = rpbla.optimize(fitness, 4, 6, evals(5000), 5);
  EXPECT_DOUBLE_EQ(result.best_fitness, 0.0);
  EXPECT_GE(result.iterations, 1u);  // at least one restart recorded
}

TEST(Rpbla, BeatsRandomSearchOnEqualBudget) {
  DisplacementFitness f1, f2;
  const auto rs_result =
      RandomSearch{}.optimize(f1, 6, 16, evals(2000), 9);
  const auto pbla_result = Rpbla{}.optimize(f2, 6, 16, evals(2000), 9);
  EXPECT_GE(pbla_result.best_fitness, rs_result.best_fitness);
}

TEST(Ga, ImprovesOverItsInitialPopulation) {
  DisplacementFitness fitness;
  GeneticOptions options;
  options.population = 20;
  const GeneticAlgorithm ga(options);
  const auto result = ga.optimize(fitness, 6, 16, evals(2000), 21);
  // First improvement event corresponds to the first individual; the
  // final best must strictly beat a pure first-sample baseline.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_GT(result.best_fitness, result.trace.front().fitness);
}

TEST(Ga, OxVariantWorks) {
  DisplacementFitness fitness;
  GeneticOptions options;
  options.crossover = GeneticOptions::Crossover::Ox;
  const GeneticAlgorithm ga(options);
  const auto result = ga.optimize(fitness, 4, 9, evals(800), 3);
  EXPECT_GE(result.best_fitness, -20.0);
}

TEST(Ga, RejectsBadOptions) {
  GeneticOptions bad;
  bad.population = 1;
  EXPECT_THROW(GeneticAlgorithm{bad}, InvalidArgument);
  GeneticOptions elites;
  elites.elites = elites.population;
  EXPECT_THROW(GeneticAlgorithm{elites}, InvalidArgument);
  GeneticOptions mutation;
  mutation.mutation_rate = 1.0;
  EXPECT_THROW(GeneticAlgorithm{mutation}, InvalidArgument);
}

TEST(Sa, RejectsBadOptions) {
  AnnealingOptions bad;
  bad.cooling = 1.5;
  EXPECT_THROW(SimulatedAnnealing{bad}, InvalidArgument);
}

TEST(Tabu, RejectsBadOptions) {
  TabuOptions bad;
  bad.tenure = 0;
  EXPECT_THROW(TabuSearch{bad}, InvalidArgument);
}

TEST(Registry, BuiltinsAndErrors) {
  const auto names = registered_optimizers();
  for (const auto* expected : {"rs", "ga", "rpbla", "sa", "tabu",
                               "exhaustive"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end());
  EXPECT_THROW(make_optimizer("gradient_descent"), InvalidArgument);
  register_optimizer("rs_alias", [] {
    return std::make_unique<RandomSearch>();
  });
  EXPECT_EQ(make_optimizer("rs_alias")->name(), "rs");
}

TEST(TimeBudget, StopsOnWallClock) {
  DisplacementFitness fitness;
  OptimizerBudget budget;
  budget.max_evaluations = 0;  // unlimited
  budget.max_seconds = 0.05;
  const auto result = RandomSearch{}.optimize(fitness, 4, 9, budget, 1);
  EXPECT_GE(result.evaluations, 1u);
  EXPECT_GE(result.seconds, 0.05);
  EXPECT_LT(result.seconds, 5.0);  // terminated promptly
}

}  // namespace
}  // namespace phonoc
