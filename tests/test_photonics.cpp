// Unit tests for the photonic element model: Table I parameters and the
// Eq. (1a)-(1j) transfer behaviour.

#include <gtest/gtest.h>

#include "photonics/elements.hpp"
#include "photonics/parameters.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace phonoc {
namespace {

LinearParameters paper_linear() {
  return LinearParameters::from(PhysicalParameters::paper_defaults());
}

TEST(Parameters, PaperDefaultsMatchTableI) {
  const auto p = PhysicalParameters::paper_defaults();
  EXPECT_DOUBLE_EQ(p.crossing_loss_db, -0.04);
  EXPECT_DOUBLE_EQ(p.propagation_loss_db_per_cm, -0.274);
  EXPECT_DOUBLE_EQ(p.ppse_off_loss_db, -0.005);
  EXPECT_DOUBLE_EQ(p.ppse_on_loss_db, -0.5);
  EXPECT_DOUBLE_EQ(p.cpse_off_loss_db, -0.045);
  EXPECT_DOUBLE_EQ(p.cpse_on_loss_db, -0.5);
  EXPECT_DOUBLE_EQ(p.crossing_crosstalk_db, -40.0);
  EXPECT_DOUBLE_EQ(p.pse_off_crosstalk_db, -20.0);
  EXPECT_DOUBLE_EQ(p.pse_on_crosstalk_db, -25.0);
  EXPECT_NO_THROW(p.validate());
}

TEST(Parameters, ValidateRejectsGains) {
  auto p = PhysicalParameters::paper_defaults();
  p.crossing_loss_db = 0.1;  // a passive crossing cannot amplify
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Parameters, ValidateRejectsNonFinite) {
  auto p = PhysicalParameters::paper_defaults();
  p.pse_on_crosstalk_db = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(Parameters, LinearConversion) {
  const auto lin = paper_linear();
  EXPECT_NEAR(lin.crossing_crosstalk, 1e-4, 1e-12);   // -40 dB
  EXPECT_NEAR(lin.pse_off_crosstalk, 1e-2, 1e-12);    // -20 dB
  EXPECT_NEAR(lin.ppse_on_loss, db_to_linear(-0.5), 1e-12);
  // 1 cm of waveguide: -0.274 dB.
  EXPECT_NEAR(linear_to_db(lin.propagation_gain(1.0)), -0.274, 1e-9);
  EXPECT_DOUBLE_EQ(lin.propagation_gain(0.0), 1.0);
}

// --- element transfers: every Eq. (1a)-(1j) case --------------------------------

TEST(Elements, PpseOffMatchesEq1a1b) {
  const auto lin = paper_linear();
  const auto t =
      element_transfer(ElementKind::Ppse, RingState::Off, Rail::A, lin);
  EXPECT_EQ(t.signal_out, Rail::A);                       // through
  EXPECT_NEAR(linear_to_db(t.signal_gain), -0.005, 1e-9); // Lp,off (1a)
  EXPECT_EQ(t.leak_out, Rail::B);                         // drop
  EXPECT_NEAR(linear_to_db(t.leak_gain), -20.0, 1e-9);    // Kp,off (1b)
}

TEST(Elements, PpseOnMatchesEq1c1d) {
  const auto lin = paper_linear();
  const auto t =
      element_transfer(ElementKind::Ppse, RingState::On, Rail::A, lin);
  EXPECT_EQ(t.signal_out, Rail::B);                       // drop
  EXPECT_NEAR(linear_to_db(t.signal_gain), -0.5, 1e-9);   // Lp,on (1c)
  EXPECT_EQ(t.leak_out, Rail::A);                         // through
  EXPECT_NEAR(linear_to_db(t.leak_gain), -25.0, 1e-9);    // Kp,on (1d)
}

TEST(Elements, CpseOffMatchesEq1e1f) {
  const auto lin = paper_linear();
  const auto t =
      element_transfer(ElementKind::Cpse, RingState::Off, Rail::A, lin);
  EXPECT_EQ(t.signal_out, Rail::A);
  EXPECT_NEAR(linear_to_db(t.signal_gain), -0.045, 1e-9);  // Lc,off (1e)
  EXPECT_EQ(t.leak_out, Rail::B);
  // Eq. (1f): Kp,off + Kc = 0.01 + 0.0001 in linear domain.
  EXPECT_NEAR(t.leak_gain, 0.01 + 0.0001, 1e-12);
}

TEST(Elements, CpseOnMatchesEq1g1h) {
  const auto lin = paper_linear();
  const auto t =
      element_transfer(ElementKind::Cpse, RingState::On, Rail::A, lin);
  EXPECT_EQ(t.signal_out, Rail::B);
  EXPECT_NEAR(linear_to_db(t.signal_gain), -0.5, 1e-9);   // Lc,on (1g)
  EXPECT_EQ(t.leak_out, Rail::A);
  EXPECT_NEAR(linear_to_db(t.leak_gain), -25.0, 1e-9);    // Kp,on (1h)
}

TEST(Elements, CrossingMatchesEq1i1j) {
  const auto lin = paper_linear();
  const auto t =
      element_transfer(ElementKind::Crossing, RingState::Off, Rail::B, lin);
  EXPECT_EQ(t.signal_out, Rail::B);                       // straight (1i)
  EXPECT_NEAR(linear_to_db(t.signal_gain), -0.04, 1e-9);  // Lc
  EXPECT_EQ(t.leak_out, Rail::A);                         // coupled (1j)
  EXPECT_NEAR(linear_to_db(t.leak_gain), -40.0, 1e-9);    // Kc
}

TEST(Elements, CrossingHasNoOnState) {
  const auto lin = paper_linear();
  EXPECT_THROW(
      (void)element_transfer(ElementKind::Crossing, RingState::On, Rail::A,
                             lin),
      ModelError);
}

TEST(Elements, TransferIsRailSymmetric) {
  const auto lin = paper_linear();
  for (const auto kind : {ElementKind::Ppse, ElementKind::Cpse}) {
    for (const auto state : {RingState::Off, RingState::On}) {
      const auto ta = element_transfer(kind, state, Rail::A, lin);
      const auto tb = element_transfer(kind, state, Rail::B, lin);
      EXPECT_DOUBLE_EQ(ta.signal_gain, tb.signal_gain);
      EXPECT_DOUBLE_EQ(ta.leak_gain, tb.leak_gain);
      EXPECT_EQ(ta.signal_out, other_rail(tb.signal_out));
      EXPECT_EQ(ta.leak_out, other_rail(tb.leak_out));
    }
  }
}

TEST(Elements, LeakAndSignalAlwaysOnOppositeRails) {
  const auto lin = paper_linear();
  const auto check = [&](ElementKind kind, RingState state) {
    const auto t = element_transfer(kind, state, Rail::A, lin);
    EXPECT_EQ(t.leak_out, other_rail(t.signal_out));
  };
  check(ElementKind::Crossing, RingState::Off);
  check(ElementKind::Ppse, RingState::Off);
  check(ElementKind::Ppse, RingState::On);
  check(ElementKind::Cpse, RingState::Off);
  check(ElementKind::Cpse, RingState::On);
}

TEST(Elements, HasRing) {
  EXPECT_FALSE(has_ring(ElementKind::Crossing));
  EXPECT_TRUE(has_ring(ElementKind::Ppse));
  EXPECT_TRUE(has_ring(ElementKind::Cpse));
}

TEST(Elements, ToString) {
  EXPECT_EQ(to_string(ElementKind::Crossing), "crossing");
  EXPECT_EQ(to_string(ElementKind::Ppse), "ppse");
  EXPECT_EQ(to_string(ElementKind::Cpse), "cpse");
  EXPECT_EQ(to_string(Rail::A), "A");
  EXPECT_EQ(to_string(Rail::B), "B");
}

/// Property sweep: signal gain <= 1 and leak gain < signal gain for all
/// element kinds/states under a range of parameter scalings.
class ElementPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ElementPropertyTest, PassiveAndLeakWeakerThanSignal) {
  auto p = PhysicalParameters::paper_defaults();
  const double scale = GetParam();
  p.crossing_loss_db *= scale;
  p.ppse_off_loss_db *= scale;
  p.cpse_off_loss_db *= scale;
  p.ppse_on_loss_db *= scale;
  p.cpse_on_loss_db *= scale;
  const auto lin = LinearParameters::from(p);
  for (const auto kind :
       {ElementKind::Crossing, ElementKind::Ppse, ElementKind::Cpse}) {
    for (const auto state : {RingState::Off, RingState::On}) {
      if (kind == ElementKind::Crossing && state == RingState::On) continue;
      const auto t = element_transfer(kind, state, Rail::A, lin);
      EXPECT_LE(t.signal_gain, 1.0);
      EXPECT_GT(t.signal_gain, 0.0);
      EXPECT_LT(t.leak_gain, t.signal_gain);
      EXPECT_GT(t.leak_gain, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LossScales, ElementPropertyTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

}  // namespace
}  // namespace phonoc
